#pragma once

/// \file detector.hpp
/// Public facade of the FETCH reproduction: function-start detection from
/// exception-handling information, with each of the paper's strategies as
/// an independent toggle so the evaluation can reproduce every ladder step
/// of Figures 5a-5c and the full FETCH configuration of Table III.
///
/// The full pipeline (all options on) is §VI's FETCH:
///   1. extract FDE PC Begin values from .eh_frame           (use_fdes)
///   2. safe recursive disassembly from the seeds            (recursive)
///   3. soundness-driven function-pointer detection (§IV-E)  (pointer_detection)
///   4. Algorithm 1: conservative tail-call detection and
///      non-contiguous-function merging, plus the calling-
///      convention check on raw FDE starts (§V-B)            (fix_fde_errors)

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "disasm/code_view.hpp"
#include "disasm/recursive.hpp"
#include "ehframe/cfi_eval.hpp"
#include "ehframe/eh_frame.hpp"
#include "elf/elf_file.hpp"

namespace fetch::core {

/// How a reported function start was established.
enum class Provenance : std::uint8_t {
  kFde,         ///< PC Begin of a call frame
  kSymbol,      ///< .symtab function symbol
  kEntryPoint,  ///< ELF entry point
  kCallTarget,  ///< target of a direct call seen by recursive disassembly
  kPointer,     ///< validated function pointer (§IV-E)
  kTailCall,    ///< target of a detected tail call (Algorithm 1)
};

[[nodiscard]] const char* provenance_name(Provenance p);

struct DetectorOptions {
  bool use_fdes = true;
  /// Also seed from .symtab function symbols (used for the wild-binary
  /// study; self-built evaluation keeps this off).
  bool use_symbols = false;
  /// Seed from the ELF entry point.
  bool use_entry_point = true;
  /// Safe recursive disassembly (§IV-C).
  bool recursive = true;
  /// Function-pointer detection (§IV-E, "Xref" in Figure 5c).
  bool pointer_detection = true;
  /// Algorithm 1 + calling-convention check of raw FDE starts (§V-B).
  bool fix_fde_errors = true;
  disasm::Options disasm;
};

/// Extent of one detected function: entry, one past its highest
/// instruction byte (including merged non-contiguous parts), and the
/// number of instructions reached intra-procedurally.
struct FunctionExtent {
  std::uint64_t entry = 0;
  std::uint64_t end = 0;
  std::size_t instructions = 0;
};

struct DetectionResult {
  /// Final function starts with provenance.
  std::map<std::uint64_t, Provenance> functions;

  /// Extents for every start (only populated when `recursive` ran).
  std::map<std::uint64_t, FunctionExtent> extents;

  // --- Diagnostics for the evaluation harness -------------------------------
  std::set<std::uint64_t> fde_starts;      ///< raw FDE PC Begins
  std::set<std::uint64_t> symbol_starts;   ///< raw symbol values (if used)
  std::set<std::uint64_t> call_targets;    ///< found by recursive disassembly
  std::set<std::uint64_t> pointer_starts;  ///< added by pointer detection
  std::set<std::uint64_t> tail_targets;    ///< added by Algorithm 1
  /// Starts removed by Algorithm 1 as non-beginning parts of
  /// non-contiguous functions, mapped to the function they merged into.
  std::map<std::uint64_t, std::uint64_t> merged_parts;
  /// FDE starts rejected by the calling-convention check (mislabeled,
  /// developer-inserted CFI — Figure 6b).
  std::set<std::uint64_t> invalid_fde_starts;
  /// Functions Algorithm 1 skipped because their CFI lacks complete stack
  /// height information (§V-C residual false positives live here).
  std::set<std::uint64_t> skipped_incomplete_cfi;

  /// Final start set, for convenience.
  [[nodiscard]] std::set<std::uint64_t> starts() const {
    std::set<std::uint64_t> out;
    for (const auto& [addr, prov] : functions) {
      out.insert(addr);
    }
    return out;
  }
};

/// One-binary detection context; owns the decode cache and parsed
/// .eh_frame so repeated runs with different options are cheap.
class FunctionDetector {
 public:
  explicit FunctionDetector(const elf::ElfFile& elf);

  /// Runs the pipeline selected by \p options.
  [[nodiscard]] DetectionResult run(const DetectorOptions& options = {}) const;

  [[nodiscard]] const disasm::CodeView& code() const { return code_; }
  [[nodiscard]] const std::optional<eh::EhFrame>& eh_frame() const {
    return eh_;
  }

 private:
  const elf::ElfFile& elf_;
  disasm::CodeView code_;
  std::optional<eh::EhFrame> eh_;
};

}  // namespace fetch::core
