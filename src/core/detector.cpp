#include "core/detector.hpp"

#include <algorithm>

#include "analysis/callconv.hpp"
#include "analysis/pointer_scan.hpp"
#include "core/pointer_detector.hpp"
#include "core/tail_call_merger.hpp"

namespace fetch::core {

const char* provenance_name(Provenance p) {
  switch (p) {
    case Provenance::kFde:
      return "fde";
    case Provenance::kSymbol:
      return "symbol";
    case Provenance::kEntryPoint:
      return "entry";
    case Provenance::kCallTarget:
      return "call-target";
    case Provenance::kPointer:
      return "pointer";
    case Provenance::kTailCall:
      return "tail-call";
  }
  return "?";
}

FunctionDetector::FunctionDetector(const elf::ElfFile& elf)
    : elf_(elf), code_(elf), eh_(eh::EhFrame::from_elf(elf)) {}

DetectionResult FunctionDetector::run(const DetectorOptions& options) const {
  DetectionResult out;

  // --- Seeds ------------------------------------------------------------------
  std::vector<std::uint64_t> seeds;
  if (options.use_fdes && eh_) {
    for (const std::uint64_t pc : eh_->pc_begins()) {
      if (code_.is_code(pc)) {
        out.fde_starts.insert(pc);
        seeds.push_back(pc);
      }
    }
  }
  if (options.use_symbols) {
    for (const elf::Symbol& sym : elf_.symbols()) {
      if (sym.is_function() && code_.is_code(sym.value)) {
        out.symbol_starts.insert(sym.value);
        seeds.push_back(sym.value);
      }
    }
  }
  if (options.use_entry_point && code_.is_code(elf_.entry())) {
    seeds.push_back(elf_.entry());
  }
  std::sort(seeds.begin(), seeds.end());
  seeds.erase(std::unique(seeds.begin(), seeds.end()), seeds.end());

  // --- §V-B: drop FDE starts that violate the calling convention ------------
  // (developer-mislabeled CFI, Figure 6b). Only done when error fixing is
  // enabled; the raw-FDE studies keep them.
  if (options.fix_fde_errors) {
    std::vector<std::uint64_t> kept;
    kept.reserve(seeds.size());
    for (const std::uint64_t s : seeds) {
      if (out.fde_starts.count(s) != 0 &&
          !analysis::meets_calling_convention(code_, s)) {
        out.invalid_fde_starts.insert(s);
      } else {
        kept.push_back(s);
      }
    }
    seeds = std::move(kept);
  }

  // --- Safe recursive disassembly --------------------------------------------
  disasm::Result state;
  if (options.recursive) {
    state = disasm::analyze(code_, seeds, options.disasm);
  } else {
    // FDE-only mode: starts are just the seeds; still record them in the
    // disasm state so downstream stages have a uniform view.
    for (const std::uint64_t s : seeds) {
      state.starts.insert(s);
    }
  }
  out.call_targets = state.call_targets;

  // --- Function-pointer detection (§IV-E) ------------------------------------
  if (options.pointer_detection && options.recursive) {
    const PointerDetectionResult pd =
        detect_pointer_functions(code_, state, options.disasm);
    out.pointer_starts = pd.accepted;
    if (!pd.accepted.empty()) {
      // Rebuild per-function structure with the enlarged start set.
      std::vector<std::uint64_t> all(state.starts.begin(), state.starts.end());
      state = disasm::analyze(code_, all, options.disasm);
    }
  }

  // --- Algorithm 1 (§V-B) -----------------------------------------------------
  if (options.fix_fde_errors && options.recursive && eh_) {
    const std::set<std::uint64_t> data_refs =
        analysis::scan_data_pointers(elf_, state);
    const MergeOutcome mo = merge_noncontiguous_functions(
        code_, state, *eh_, data_refs, out.fde_starts);
    for (const auto& [part, parent] : mo.merged) {
      out.merged_parts.emplace(part, parent);
    }
    out.tail_targets = mo.tail_targets;
    out.skipped_incomplete_cfi = mo.skipped_incomplete;
  }

  // --- Final provenance-tagged set -------------------------------------------
  for (const auto& [entry, fn] : state.functions) {
    out.extents.emplace(
        entry, FunctionExtent{entry, fn.max_end, fn.insn_addrs.size()});
  }
  for (const std::uint64_t s : state.starts) {
    Provenance prov = Provenance::kCallTarget;
    if (out.fde_starts.count(s) != 0) {
      prov = Provenance::kFde;
    } else if (out.symbol_starts.count(s) != 0) {
      prov = Provenance::kSymbol;
    } else if (out.pointer_starts.count(s) != 0) {
      prov = Provenance::kPointer;
    } else if (out.tail_targets.count(s) != 0) {
      prov = Provenance::kTailCall;
    } else if (s == elf_.entry()) {
      prov = Provenance::kEntryPoint;
    }
    out.functions.emplace(s, prov);
  }
  return out;
}

}  // namespace fetch::core
