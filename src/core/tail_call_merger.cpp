#include "core/tail_call_merger.hpp"

#include <algorithm>
#include <deque>

#include "analysis/callconv.hpp"
#include "analysis/stack_height.hpp"
#include "ehframe/cfi_eval.hpp"

namespace fetch::core {

namespace {

/// Reference oracle combining code xrefs and data-scan hits.
class RefOracle {
 public:
  RefOracle(const disasm::XRefs& xrefs, const std::set<std::uint64_t>& data)
      : xrefs_(xrefs), data_(data) {}

  /// True when \p target is referenced by anything other than direct
  /// jumps / jump tables whose site lies inside \p f.
  [[nodiscard]] bool referenced_outside(const disasm::Function& f,
                                        std::uint64_t target) const {
    if (data_.count(target) != 0) {
      return true;
    }
    const auto* refs = xrefs_.at(target);
    if (refs == nullptr) {
      return false;
    }
    for (const disasm::Ref& r : *refs) {
      const bool is_jump_kind = r.kind == disasm::RefKind::kJump ||
                                r.kind == disasm::RefKind::kJumpTable;
      if (!is_jump_kind || !f.contains(r.site)) {
        return true;
      }
    }
    return false;
  }

 private:
  const disasm::XRefs& xrefs_;
  const std::set<std::uint64_t>& data_;
};

/// Stack height provider: CFI by default (with the §V-B completeness
/// gate), static analysis for the ablation mode.
class HeightOracle {
 public:
  HeightOracle(const disasm::CodeView& code, const eh::EhFrame& eh,
               const MergeOptions& options)
      : code_(code), eh_(eh), options_(options) {}

  /// Height at \p site inside \p f; std::nullopt means "unavailable, skip
  /// the function" (incomplete CFI — tracked by the caller).
  [[nodiscard]] std::optional<std::int64_t> height_at(
      const disasm::Function& f, std::uint64_t site) {
    if (options_.use_cfi_heights) {
      const eh::Fde* fde = eh_.fde_covering(site);
      if (fde == nullptr) {
        return std::nullopt;
      }
      auto it = tables_.find(fde->pc_begin);
      if (it == tables_.end()) {
        it = tables_
                 .emplace(fde->pc_begin,
                          eh::evaluate_cfi(eh_.cie_for(*fde), *fde))
                 .first;
      }
      if (!it->second) {
        return std::nullopt;  // malformed CFI
      }
      // Function-entry FDEs must pass the full §V-B completeness gate;
      // non-entry FDEs (merged cold parts) only need reliable rsp-based
      // rows throughout (their entry offset inherits the parent frame).
      const bool usable = fde->pc_begin == f.entry
                              ? it->second->complete_stack_height()
                              : it->second->all_rsp_based();
      if (!usable) {
        return std::nullopt;
      }
      return it->second->stack_height_at(site);
    }

    // Ablation: static stack analysis.
    const auto cached = static_heights_.find(f.entry);
    const analysis::HeightMap* hm;
    if (cached != static_heights_.end()) {
      hm = &cached->second;
    } else {
      const auto config = options_.static_dyninst_like
                              ? analysis::dyninst_like_config()
                              : analysis::angr_like_config();
      hm = &static_heights_
                .emplace(f.entry,
                         analysis::analyze_stack_heights(code_, f, config))
                .first->second;
    }
    const auto it = hm->find(site);
    if (it == hm->end()) {
      return std::nullopt;
    }
    return it->second;
  }

 private:
  const disasm::CodeView& code_;
  const eh::EhFrame& eh_;
  MergeOptions options_;
  std::map<std::uint64_t, std::optional<eh::CfiTable>> tables_;
  std::map<std::uint64_t, analysis::HeightMap> static_heights_;
};

}  // namespace

MergeOutcome merge_noncontiguous_functions(
    const disasm::CodeView& code, disasm::Result& state,
    const eh::EhFrame& eh, const std::set<std::uint64_t>& data_refs,
    const std::set<std::uint64_t>& fde_starts, const MergeOptions& options) {
  MergeOutcome outcome;
  RefOracle refs(state.xrefs, data_refs);
  HeightOracle heights(code, eh, options);

  // Iterate functions in address order; merging appends the absorbed
  // part's jumps to the current work queue so chains of parts collapse.
  std::vector<std::uint64_t> entries;
  entries.reserve(state.functions.size());
  for (const auto& [entry, fn] : state.functions) {
    entries.push_back(entry);
  }

  for (const std::uint64_t entry : entries) {
    auto fn_it = state.functions.find(entry);
    if (fn_it == state.functions.end()) {
      continue;  // already merged into an earlier function
    }
    disasm::Function& fn = fn_it->second;

    std::deque<disasm::FuncJump> pending(fn.jumps.begin(), fn.jumps.end());
    bool skipped_logged = false;
    while (!pending.empty()) {
      const disasm::FuncJump j = pending.front();
      pending.pop_front();
      const std::uint64_t t = j.target;
      if (fn.contains(t)) {
        continue;  // jump inside the function
      }
      if (!code.is_code(t)) {
        continue;
      }

      const auto height = heights.height_at(fn, j.site);
      if (!height) {
        if (options.use_cfi_heights && !skipped_logged) {
          outcome.skipped_incomplete.insert(entry);
          skipped_logged = true;
        }
        continue;  // no reliable stack height: conservative skip
      }

      bool is_tail_call = false;
      if (*height == 0) {
        if (refs.referenced_outside(fn, t) &&
            analysis::meets_calling_convention(code, t)) {
          is_tail_call = true;
          if (state.starts.count(t) == 0) {
            outcome.tail_targets.insert(t);
            state.starts.insert(t);
          }
        }
      }

      // Merge check: the target is a detected FDE-carrying function and is
      // not referenced by anything except jumps inside this function.
      if (!is_tail_call && state.functions.count(t) != 0 && t != entry &&
          fde_starts.count(t) != 0 && !refs.referenced_outside(fn, t)) {
        // Merge t's part into fn.
        auto part_it = state.functions.find(t);
        disasm::Function part = std::move(part_it->second);
        state.functions.erase(part_it);
        state.starts.erase(t);
        outcome.merged[t] = entry;
        fn.insn_addrs.insert(part.insn_addrs.begin(), part.insn_addrs.end());
        fn.max_end = std::max(fn.max_end, part.max_end);
        for (const disasm::FuncJump& pj : part.jumps) {
          fn.jumps.push_back(pj);
          pending.push_back(pj);
        }
        for (auto& table : part.tables) {
          fn.tables.push_back(std::move(table));
        }
      }
    }
  }

  // Redirect merges that landed on an intermediate part to the final root.
  for (auto& [part, parent] : outcome.merged) {
    std::uint64_t root = parent;
    while (true) {
      const auto it = outcome.merged.find(root);
      if (it == outcome.merged.end()) {
        break;
      }
      root = it->second;
    }
    parent = root;
  }
  return outcome;
}

}  // namespace fetch::core
