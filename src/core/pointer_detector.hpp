#pragma once

/// \file pointer_detector.hpp
/// Soundness-driven function-pointer detection (§IV-E). For every candidate
/// pointer collected conservatively (sliding 8-byte windows + constants in
/// code), probing validates legitimacy by running conservative recursive
/// disassembly from the pointer and checking four error classes:
///   (i)   invalid opcodes;
///   (ii)  running into the middle of previously disassembled instructions;
///   (iii) control transfers into the middle of previously detected
///         functions;
///   (iv)  invalid calling conventions (non-argument registers must be
///         initialized before use).
/// Pointers that survive become new function starts; their disassembly is
/// merged into the global state and any constants they reveal join the
/// candidate queue.

#include <cstdint>
#include <set>

#include "disasm/code_view.hpp"
#include "disasm/recursive.hpp"

namespace fetch::core {

struct PointerDetectionResult {
  /// Candidates accepted as function starts.
  std::set<std::uint64_t> accepted;
  /// Number of candidates probed (for the "0.31 per binary" style stats).
  std::size_t probed = 0;
};

struct PointerDetectionOptions {
  /// Restrict the data scan to 8-byte-aligned slots (DESIGN.md ablation
  /// #3). The paper's conservative superset keeps this false.
  bool aligned_only = false;
};

/// Probes pointer candidates against (and mutating) \p state: accepted
/// pointers add their coverage and xrefs to \p state so later probes see
/// them. \p options carries the noreturn knowledge of the main pass.
[[nodiscard]] PointerDetectionResult detect_pointer_functions(
    const disasm::CodeView& code, disasm::Result& state,
    const disasm::Options& options,
    const PointerDetectionOptions& scan_options = {});

}  // namespace fetch::core
