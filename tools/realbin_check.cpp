/// \file realbin_check.cpp
/// Real-binary regression harness: run the detection pipeline over a
/// pinned fleet of system binaries (plus any extra paths, e.g. the CMake
/// fixture executables), score every file against its own symbol-table
/// ground truth via eval::run_batch, and FAIL when the aggregate metrics
/// drop below a checked-in threshold file. CI runs this per push (the
/// `realbin` job) and archives the `fetch-batch-v1` JSON artifact.
///
///   realbin_check [--jobs N] [--list FILE]... [--thresholds FILE]
///                 [--tier NAME] [--truth auto|dynsym|ehframe|sidecar]
///                 [--json PATH] [<elf>...]
///
/// List entries that do not exist on the current image are skipped with a
/// note (the pinned /usr/bin list must work across CI images); paths given
/// explicitly on the command line are always evaluated. The gate (see
/// DESIGN.md, "Real-binary regression gate"):
///   - at least `min_truth_files` scored files with usable ground truth,
///   - aggregate F1 over precise-truth files     >= `min_f1`
///     (symtab or sidecar truth; skipped when no file carries either),
///   - aggregate recall over all truth files     >= `min_recall`.
///
/// `--tier NAME` reads the thresholds from the nested object `NAME` of
/// the thresholds file instead of its top level — e.g. the "stripped"
/// block gates `--truth sidecar` runs over the stripped fixtures while
/// the top-level numbers keep gating the default symtab tier.

#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "eval/batch.hpp"
#include "eval/table.hpp"
#include "obs/metrics.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace fetch;

struct Thresholds {
  std::size_t min_truth_files = 1;
  double min_f1 = 0.5;
  double min_recall = 0.5;
};

int usage() {
  std::cerr << "usage: realbin_check [--jobs N] [--list FILE]...\n"
               "                     [--thresholds FILE] [--tier NAME]\n"
               "                     [--truth auto|dynsym|ehframe|sidecar]\n"
               "                     [--json PATH] [--metrics-json PATH]\n"
               "                     [<elf>...]\n";
  return 2;
}

bool load_thresholds(const std::string& path, const std::string& tier,
                     Thresholds* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open thresholds file: " + path;
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto parsed = util::json::Value::parse(buffer.str());
  if (!parsed || !parsed->is_object()) {
    *error = "thresholds file is not a JSON object: " + path;
    return false;
  }
  const util::json::Value* doc = &*parsed;
  if (!tier.empty()) {
    doc = parsed->get(tier);
    if (doc == nullptr || !doc->is_object()) {
      *error = "thresholds file has no \"" + tier + "\" tier block: " + path;
      return false;
    }
  }
  auto number = [&](const char* key, double* value) {
    if (const util::json::Value* v = doc->get(key)) {
      *value = v->as_double();
    }
  };
  double min_truth_files = static_cast<double>(out->min_truth_files);
  number("min_truth_files", &min_truth_files);
  out->min_truth_files = static_cast<std::size_t>(min_truth_files);
  number("min_f1", &out->min_f1);
  number("min_recall", &out->min_recall);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t jobs = 0;
  std::vector<std::string> lists;
  std::string thresholds_path;
  std::string tier;
  eval::TruthMode truth = eval::TruthMode::kAuto;
  std::string json_path;
  std::string metrics_json_path;
  std::vector<std::string> explicit_paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--jobs" && i + 1 < argc) {
      if (!util::parse_jobs(argv[++i], &jobs)) {
        return usage();
      }
    } else if (arg.rfind("--jobs=", 0) == 0) {
      if (!util::parse_jobs(arg.substr(7), &jobs)) {
        return usage();
      }
    } else if (arg == "--list" && i + 1 < argc) {
      lists.emplace_back(argv[++i]);
    } else if (arg.rfind("--list=", 0) == 0) {
      lists.emplace_back(arg.substr(7));
    } else if (arg == "--thresholds" && i + 1 < argc) {
      thresholds_path = argv[++i];
    } else if (arg.rfind("--thresholds=", 0) == 0) {
      thresholds_path = arg.substr(13);
    } else if (arg == "--tier" && i + 1 < argc) {
      tier = argv[++i];
    } else if (arg.rfind("--tier=", 0) == 0) {
      tier = arg.substr(7);
    } else if (arg == "--truth" && i + 1 < argc) {
      const auto mode = eval::parse_truth_mode(argv[++i]);
      if (!mode) {
        return usage();
      }
      truth = *mode;
    } else if (arg.rfind("--truth=", 0) == 0) {
      const auto mode = eval::parse_truth_mode(arg.substr(8));
      if (!mode) {
        return usage();
      }
      truth = *mode;
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--metrics-json" && i + 1 < argc) {
      metrics_json_path = argv[++i];
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      metrics_json_path = arg.substr(15);
    } else if (!arg.empty() && arg.front() == '-') {
      return usage();
    } else {
      explicit_paths.emplace_back(argv[i]);
    }
  }

  Thresholds thresholds;
  if (!thresholds_path.empty()) {
    std::string error;
    if (!load_thresholds(thresholds_path, tier, &thresholds, &error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
  } else if (!tier.empty()) {
    std::cerr << "error: --tier requires --thresholds\n";
    return 2;
  }

  // Pinned-list entries are best effort across images: keep the ones that
  // exist, note the rest. Explicit paths are mandatory — if one is broken
  // it shows up as an error row and in the report.
  std::vector<std::string> paths = explicit_paths;
  std::size_t skipped = 0;
  for (const std::string& list : lists) {
    std::vector<std::string> listed;
    std::string error;
    if (!eval::read_path_list(list, &listed, &error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    for (const std::string& path : listed) {
      std::error_code ec;
      if (std::filesystem::is_regular_file(path, ec)) {
        paths.push_back(path);
      } else {
        ++skipped;
        std::cerr << "note: skipping missing list entry: " << path << "\n";
      }
    }
  }
  if (paths.empty()) {
    std::cerr << "error: no inputs (give --list and/or explicit paths)\n";
    return 2;
  }

  eval::BatchOptions options;
  options.jobs = jobs;
  options.truth = truth;
  const eval::BatchReport report = eval::run_batch(paths, options);
  std::cout << "truth mode: " << eval::truth_mode_name(truth)
            << (tier.empty() ? "" : "  tier: " + tier) << "\n";
  report.print(std::cout);
  if (skipped != 0) {
    std::cerr << "note: " << skipped << " pinned list entries missing on "
              << "this image\n";
  }

  if (!json_path.empty()) {
    std::ofstream out(json_path, std::ios::trunc);
    out << report.json().dump() << "\n";
    out.close();
    if (out.fail()) {
      std::cerr << "error: cannot write --json file: " << json_path << "\n";
      return 2;
    }
    std::cerr << "json report: " << json_path << "\n";
  }

  if (!metrics_json_path.empty()) {
    // Pipeline-internal counters (cache behavior, per-stage latency) for
    // CI artifacts; separate from the batch report, which scores results.
    std::string error;
    if (!obs::write_global_metrics_json(metrics_json_path, &error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    std::cerr << "metrics snapshot: " << metrics_json_path << "\n";
  }

  // The gate. Every violation is reported before the verdict so a failing
  // CI log is self-explanatory.
  const eval::BatchTotals with_truth = report.totals_with_truth();
  // The F1 gate runs on the rows whose truth is complete (symtab or
  // sidecar) — the only rows where precision means anything. On the
  // default tier this is exactly the historical symtab subset.
  const eval::BatchTotals precise = report.totals_precise();
  bool failed = false;
  if (with_truth.files < thresholds.min_truth_files) {
    std::cout << "GATE: only " << with_truth.files
              << " files with usable ground truth (need >= "
              << thresholds.min_truth_files << ")\n";
    failed = true;
  }
  if (precise.files != 0 && precise.f1() < thresholds.min_f1) {
    std::cout << "GATE: precise-truth F1 " << eval::fmt(precise.f1(), 4)
              << " below threshold " << eval::fmt(thresholds.min_f1, 4)
              << "\n";
    failed = true;
  }
  if (with_truth.files != 0 && with_truth.recall() < thresholds.min_recall) {
    std::cout << "GATE: recall " << eval::fmt(with_truth.recall(), 4)
              << " below threshold " << eval::fmt(thresholds.min_recall, 4)
              << "\n";
    failed = true;
  }
  std::cout << (failed ? "realbin check: FAIL\n" : "realbin check: PASS\n");
  return failed ? 1 : 0;
}
