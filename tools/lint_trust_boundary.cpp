/// \file lint_trust_boundary.cpp
/// Blocking source lint for the untrusted-input pipeline.
///
/// The parsers under src/elf/, src/ehframe/, src/x86/ and the socket
/// framing layer (src/util/framing.hpp) consume attacker-controllable
/// bytes: ELF headers, .eh_frame/.eh_frame_hdr CFI, raw instruction
/// streams, and frames from any client of the analysis daemon. The repo
/// error policy (DESIGN.md, "Trust boundaries & correctness tooling")
/// requires every read of those bytes to go through the bounds-checked
/// util::ByteCursor / util::ByteWriter core, where the unavoidable
/// memcpy/pointer machinery lives exactly once and is fuzzed + sanitized.
///
/// This tool enforces that mechanically: it scans the trust-boundary
/// sources for the idioms that bypass the core —
///
///   reinterpret-cast   reinterpret_cast<...> (type punning / raw views)
///   const-cast         const_cast<...>
///   raw-memcpy         memcpy / memmove / strcpy / strncpy / strcat
///   pointer-arith      `.data() +` / `->data() +` (unchecked slicing)
///
/// — and fails (exit 1) on any hit. Comments and string literals are
/// ignored. A line may opt out with a trailing
/// `// lint:allow-trust-boundary(<reason>)` comment; every escape is
/// printed so reviews see the full list. It runs as the ctest
/// `lint_trust_boundary` test and as a blocking CI step.
///
/// Usage: lint_trust_boundary <repo-root> [--verbose]

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

namespace {

namespace fs = std::filesystem;

/// Directories (scanned recursively) and single files that make up the
/// trust boundary, relative to the repo root.
constexpr const char* kScanDirs[] = {"src/elf", "src/ehframe", "src/x86",
                                     "src/obs"};
constexpr const char* kScanFiles[] = {"src/util/framing.hpp"};

struct Rule {
  const char* name;
  const char* token;       ///< identifier to find (word-boundary matched)
  bool needs_plus;         ///< pointer-arith: token must be followed by '+'
};

constexpr Rule kRules[] = {
    {"reinterpret-cast", "reinterpret_cast", false},
    {"const-cast", "const_cast", false},
    {"raw-memcpy", "memcpy", false},
    {"raw-memcpy", "memmove", false},
    {"raw-memcpy", "strcpy", false},
    {"raw-memcpy", "strncpy", false},
    {"raw-memcpy", "strcat", false},
    {"pointer-arith", "data()", true},
};

constexpr const char* kAllowMarker = "lint:allow-trust-boundary(";

struct Finding {
  std::string file;
  std::size_t line;
  std::string rule;
  std::string text;
  bool allowed;
};

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// Replaces comments and string/char literal *contents* with spaces so the
/// rule matcher cannot trip on documentation or message text. Line
/// structure (and thus line numbers) is preserved.
std::string strip_comments_and_literals(const std::string& src) {
  std::string out = src;
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kChar,
    kRawString
  };
  State state = State::kCode;
  std::string raw_delim;  // raw string: the )delim" terminator to find
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char next = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          out[i] = ' ';
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          out[i] = ' ';
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || !ident_char(out[i - 1]))) {
          // R"delim( ... )delim"
          std::size_t p = i + 2;
          std::string delim;
          while (p < out.size() && out[p] != '(' && delim.size() < 16) {
            delim.push_back(out[p++]);
          }
          raw_delim = ")" + delim + "\"";
          state = State::kRawString;
        } else if (c == '"') {
          state = State::kString;
        } else if (c == '\'' && (i == 0 || !ident_char(out[i - 1]))) {
          // Identifier-adjacent quotes are digit separators (1'000), not
          // character literals.
          state = State::kChar;
        }
        break;
      case State::kLineComment:
        if (c == '\n') {
          state = State::kCode;
        } else {
          out[i] = ' ';
        }
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          out[i] = ' ';
          out[i + 1] = ' ';
          ++i;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kString:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '"') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kChar:
        if (c == '\\') {
          out[i] = ' ';
          if (next != '\n') {
            out[i + 1] = ' ';
          }
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case State::kRawString:
        if (out.compare(i, raw_delim.size(), raw_delim) == 0) {
          i += raw_delim.size() - 1;
          state = State::kCode;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
    }
  }
  return out;
}

/// True when \p token occurs in \p line as a standalone identifier (for
/// pointer-arith: followed by `+`, allowing whitespace).
bool matches(const std::string& line, const Rule& rule) {
  std::size_t pos = 0;
  while ((pos = line.find(rule.token, pos)) != std::string::npos) {
    const bool word_start = pos == 0 || !ident_char(line[pos - 1]);
    std::size_t end = pos + std::string(rule.token).size();
    // `data()` already ends with ')'; identifiers need a boundary check.
    const char last = rule.token[std::string(rule.token).size() - 1];
    const bool word_end =
        !ident_char(last) || end >= line.size() || !ident_char(line[end]);
    if (word_start && word_end) {
      if (!rule.needs_plus) {
        return true;
      }
      while (end < line.size() &&
             std::isspace(static_cast<unsigned char>(line[end])) != 0) {
        ++end;
      }
      if (end < line.size() && line[end] == '+') {
        return true;
      }
    }
    ++pos;
  }
  return false;
}

void scan_file(const fs::path& path, const fs::path& root,
               std::vector<Finding>* findings) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string raw = buf.str();
  const std::string code = strip_comments_and_literals(raw);

  std::istringstream raw_lines(raw);
  std::istringstream code_lines(code);
  std::string raw_line;
  std::string code_line;
  std::size_t lineno = 0;
  const std::string rel = fs::relative(path, root).generic_string();
  while (std::getline(raw_lines, raw_line) &&
         std::getline(code_lines, code_line)) {
    ++lineno;
    const bool allowed = raw_line.find(kAllowMarker) != std::string::npos;
    for (const Rule& rule : kRules) {
      if (matches(code_line, rule)) {
        findings->push_back({rel, lineno, rule.name, raw_line, allowed});
        break;  // one finding per line is enough to fail it
      }
    }
  }
}

bool scannable(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".cpp" || ext == ".hpp" || ext == ".h" || ext == ".cc";
}

}  // namespace

int main(int argc, char** argv) {
  bool verbose = false;
  std::string root_arg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--verbose") {
      verbose = true;
    } else if (root_arg.empty()) {
      root_arg = arg;
    } else {
      std::fprintf(stderr, "usage: %s <repo-root> [--verbose]\n", argv[0]);
      return 2;
    }
  }
  if (root_arg.empty()) {
    std::fprintf(stderr, "usage: %s <repo-root> [--verbose]\n", argv[0]);
    return 2;
  }
  const fs::path root(root_arg);

  std::vector<fs::path> files;
  for (const char* dir : kScanDirs) {
    const fs::path base = root / dir;
    if (!fs::is_directory(base)) {
      std::fprintf(stderr, "lint_trust_boundary: missing directory %s\n",
                   base.string().c_str());
      return 2;
    }
    for (const auto& entry : fs::recursive_directory_iterator(base)) {
      if (entry.is_regular_file() && scannable(entry.path())) {
        files.push_back(entry.path());
      }
    }
  }
  for (const char* file : kScanFiles) {
    const fs::path path = root / file;
    if (!fs::is_regular_file(path)) {
      std::fprintf(stderr, "lint_trust_boundary: missing file %s\n",
                   path.string().c_str());
      return 2;
    }
    files.push_back(path);
  }

  std::vector<Finding> findings;
  for (const fs::path& path : files) {
    scan_file(path, root, &findings);
  }

  int violations = 0;
  int escapes = 0;
  for (const Finding& f : findings) {
    if (f.allowed) {
      ++escapes;
      std::printf("ALLOWED  %s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                  f.rule.c_str(), f.text.c_str());
    } else {
      ++violations;
      std::printf("VIOLATION %s:%zu: [%s] %s\n", f.file.c_str(), f.line,
                  f.rule.c_str(), f.text.c_str());
    }
  }
  if (verbose) {
    for (const fs::path& path : files) {
      std::printf("scanned  %s\n",
                  fs::relative(path, root).generic_string().c_str());
    }
  }
  std::printf(
      "lint_trust_boundary: %zu files scanned, %d violation(s), "
      "%d allowed escape(s)\n",
      files.size(), violations, escapes);
  if (violations != 0) {
    std::printf(
        "route untrusted reads through util::ByteCursor / "
        "util::subspan_checked (see DESIGN.md, \"Trust boundaries\")\n");
  }
  return violations == 0 ? 0 : 1;
}
