/// \file hostile_check.cpp
/// Adversarial-input gate: feed every fuzz-corpus seed plus a set of
/// structure-aware ELF mutants (truncations, lying section headers, a
/// lying .eh_frame_hdr fde_count, overlapping FDEs, garbage unwind data)
/// through the full analysis pipeline and the live service socket, and
/// FAIL on any crash, hang, unbounded allocation, or wrong-success
/// outcome. CI runs this per push (the `stripped-and-hostile` job) and
/// archives the `fetch-hostile-v1` JSON artifact.
///
///   hostile_check [--corpus DIR] [--socket PATH] [--json PATH]
///                 [--max-rss-mb N] [--skip-service] [--clients N]
///
/// `--clients N` runs the fault-injection *client* phase against an
/// in-process daemon configured like the overload acceptance scenario
/// (4 workers, 64-connection limit, bounded queue, short idle and
/// write-stall deadlines): N adversarial connections split across idle
/// campers, slow-loris writers, half-open floods, mid-frame
/// disconnectors, and read-side stalls, while a healthy probe client
/// must keep getting answers (ok or `overloaded`) within its deadline.
/// The phase FAILs unless the daemon evicts the idlers and stalled
/// readers (counters prove it) and rejects an accept-time connection
/// flood over the limit. `--corpus` is optional when `--clients` is
/// given; with both, all phases run.
///
/// Outcome taxonomy (see DESIGN.md, "Stripped & hostile evaluation"):
///   - non-ELF bytes MUST produce an error row (ok == false); an ok row
///     for garbage is a wrong-success violation,
///   - well-formed ELF containers with hostile metadata may produce an
///     error row OR a degraded ok row — either is acceptable, crashing
///     or throwing is not (AnalysisSession::analyze_image never throws),
///   - the service must answer every hostile frame with an error (or
///     close the torn connection) and still answer a fresh ping after
///     every single replay,
///   - peak RSS stays under --max-rss-mb (default 2048): a 4-byte
///     header must not buy a gigabyte allocation.

#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

// Clang spells sanitizer detection __has_feature; GCC defines
// __SANITIZE_THREAD__ instead. Normalize so both can be tested in one
// preprocessor expression.
#if defined(__has_feature)
#define FETCH_HAS_FEATURE(x) __has_feature(x)
#else
#define FETCH_HAS_FEATURE(x) 0
#endif

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "ehframe/eh_builder.hpp"
#include "ehframe/eh_frame.hpp"
#include "ehframe/eh_frame_hdr.hpp"
#include "elf/elf_builder.hpp"
#include "elf/elf_file.hpp"
#include "eval/session.hpp"
#include "obs/metrics.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "synth/codegen.hpp"
#include "synth/corpus.hpp"
#include "util/framing.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"

namespace {

using namespace fetch;

struct HostileInput {
  std::string label;
  std::vector<std::uint8_t> bytes;
  bool elf_shaped = false;  ///< carries the ELF64 magic (see below)
};

int usage() {
  std::cerr << "usage: hostile_check [--corpus DIR] [--socket PATH]\n"
               "                     [--json PATH] [--metrics-json PATH]\n"
               "                     [--max-rss-mb N] [--skip-service]\n"
               "                     [--clients N]\n"
               "       (at least one of --corpus / --clients)\n";
  return 2;
}

/// Whether the pipeline is allowed to report success for these bytes:
/// anything that does not even start with the ELF64 magic must come back
/// as an error row.
bool elf_shaped(const std::vector<std::uint8_t>& bytes) {
  return bytes.size() >= 5 && bytes[0] == 0x7f && bytes[1] == 'E' &&
         bytes[2] == 'L' && bytes[3] == 'F' && bytes[4] == 2 /*ELFCLASS64*/;
}

// Little-endian patch helpers for the mutant builders. Mutants are
// hostile *by construction*; this is the one place in the tree where
// writing raw offsets is the point (tools/ sits outside the
// trust-boundary lint on purpose).
void patch_u16(std::vector<std::uint8_t>* b, std::size_t off,
               std::uint16_t v) {
  if (off + 2 <= b->size()) {
    (*b)[off] = static_cast<std::uint8_t>(v);
    (*b)[off + 1] = static_cast<std::uint8_t>(v >> 8);
  }
}
void patch_u32(std::vector<std::uint8_t>* b, std::size_t off,
               std::uint32_t v) {
  for (std::size_t i = 0; i < 4 && off + i < b->size(); ++i) {
    (*b)[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}
void patch_u64(std::vector<std::uint8_t>* b, std::size_t off,
               std::uint64_t v) {
  for (std::size_t i = 0; i < 8 && off + i < b->size(); ++i) {
    (*b)[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

/// Finds the file offset of section \p name via a (trusted) parse of the
/// pristine base image. Returns {offset, size}; {0, 0} when absent.
std::pair<std::uint64_t, std::uint64_t> section_span(const elf::ElfFile& elf,
                                                     std::string_view name) {
  for (const elf::Section& s : elf.sections()) {
    if (s.name == name) {
      return {s.offset, s.size};
    }
  }
  return {0, 0};
}

/// Structure-aware mutants derived from one well-formed synthetic binary.
std::vector<HostileInput> make_mutants() {
  std::vector<HostileInput> out;
  // A realistic base: one small self-built corpus program, stripped like
  // the evaluation corpus.
  synth::ProgramSpec spec = synth::make_program(
      synth::projects()[1], synth::profile_for("gcc", "O2"), 0x4057u);
  spec.stripped = true;
  const std::vector<std::uint8_t> base = synth::generate(spec).image;
  const elf::ElfFile parsed({base.data(), base.size()});
  const auto [eh_off, eh_size] = section_span(parsed, ".eh_frame");
  const auto [hdr_off, hdr_size] = section_span(parsed, ".eh_frame_hdr");

  auto add = [&out](std::string label, std::vector<std::uint8_t> bytes) {
    out.push_back({std::move(label), std::move(bytes)});
  };

  // Whole-file truncations: mid-Ehdr, mid-image, one byte short.
  add("mutant/trunc_ehdr", {base.begin(), base.begin() + 32});
  add("mutant/trunc_half",
      {base.begin(), base.begin() + static_cast<std::ptrdiff_t>(
                                        base.size() / 2)});
  add("mutant/trunc_tail", {base.begin(), base.end() - 1});

  // Lying Ehdr fields.
  std::vector<std::uint8_t> m = base;
  patch_u64(&m, 0x28, 0xfffffffffffff000ULL);  // e_shoff into the void
  add("mutant/bad_shoff", std::move(m));
  m = base;
  patch_u16(&m, 0x3c, 0xffff);  // e_shnum: 65535 headers
  add("mutant/huge_shnum", std::move(m));
  m = base;
  patch_u16(&m, 0x3a, 0);  // e_shentsize zero
  add("mutant/zero_shentsize", std::move(m));

  // Truncated .eh_frame: cut the file in the middle of the CFI bytes.
  if (eh_off != 0 && eh_size > 8) {
    add("mutant/eh_frame_cut",
        {base.begin(),
         base.begin() + static_cast<std::ptrdiff_t>(eh_off + eh_size / 2)});
    // Garbage .eh_frame: size preserved, content replaced.
    m = base;
    std::uint32_t x = 0x9e3779b9;
    for (std::uint64_t i = 0; i < eh_size; ++i) {
      x = x * 1664525u + 1013904223u;
      m[eh_off + i] = static_cast<std::uint8_t>(x >> 24);
    }
    add("mutant/eh_frame_garbage", std::move(m));
  }

  // Lying .eh_frame_hdr: fde_count claims 2^32-1 entries (the header
  // layout is version/encodings (4) + eh_frame_ptr (4) + fde_count (4)).
  if (hdr_off != 0 && hdr_size >= 12) {
    m = base;
    patch_u32(&m, hdr_off + 8, 0xffffffffu);
    add("mutant/lying_fde_count", std::move(m));
  }

  // Section header that lies about .eh_frame's size: extend sh_size far
  // past end-of-file. Locate the matching header by its sh_offset.
  if (eh_off != 0) {
    m = base;
    std::uint64_t shoff = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      shoff |= static_cast<std::uint64_t>(base[0x28 + i]) << (8 * i);
    }
    const std::uint16_t shnum =
        static_cast<std::uint16_t>(base[0x3c] | (base[0x3d] << 8));
    const std::uint16_t shentsize =
        static_cast<std::uint16_t>(base[0x3a] | (base[0x3b] << 8));
    for (std::uint16_t i = 0; i < shnum; ++i) {
      const std::size_t off = shoff + std::size_t{i} * shentsize;
      std::uint64_t sh_offset = 0;
      for (std::size_t k = 0; k < 8; ++k) {
        sh_offset |= static_cast<std::uint64_t>(m[off + 0x18 + k]) << (8 * k);
      }
      if (sh_offset == eh_off) {
        patch_u64(&m, off + 0x20, 0x7fffffffffffULL);  // sh_size lie
        break;
      }
    }
    add("mutant/eh_frame_size_lie", std::move(m));
  }

  // Overlapping FDEs: a fresh tiny ELF whose .eh_frame carries two FDEs
  // over intersecting PC ranges (no compiler emits this; Algorithm 1's
  // range logic must survive it).
  {
    const std::uint64_t text_addr = 0x401000;
    const std::uint64_t hdr_addr = 0x4ff000;
    const std::uint64_t frame_addr = 0x500000;
    std::vector<std::uint8_t> text(64, 0x90);  // nop sled
    text.back() = 0xc3;                        // ret
    eh::EhFrameBuilder ehb;
    ehb.add_fde(text_addr, 48, {});
    ehb.add_fde(text_addr + 16, 48, {});  // overlaps the first
    std::vector<std::uint8_t> eh_bytes = ehb.build(frame_addr);
    const eh::EhFrame overlap_eh =
        eh::EhFrame::parse({eh_bytes.data(), eh_bytes.size()}, frame_addr);
    std::vector<std::uint8_t> hdr_bytes =
        eh::build_eh_frame_hdr(overlap_eh, frame_addr, hdr_addr);
    elf::ElfBuilder builder;
    builder.add_section(".text", elf::kShtProgbits,
                        elf::kShfAlloc | elf::kShfExecinstr, text_addr,
                        std::move(text), 16);
    builder.add_section(".eh_frame_hdr", elf::kShtProgbits, elf::kShfAlloc,
                        hdr_addr, std::move(hdr_bytes), 4);
    builder.add_section(".eh_frame", elf::kShtProgbits, elf::kShfAlloc,
                        frame_addr, std::move(eh_bytes), 8);
    builder.emit_symtab(false);
    builder.set_entry(text_addr);
    add("mutant/overlapping_fdes", builder.build());
  }

  for (HostileInput& input : out) {
    input.elf_shaped = elf_shaped(input.bytes);
  }
  return out;
}

/// Sends raw bytes, half-closes, and reads at most one reply frame. A
/// missing reply (torn frame → server closes silently) is fine; a reply
/// that is not a fetch-service-v1 status document is a violation.
void replay_against_service(const std::string& socket_path,
                            const HostileInput& input,
                            bool framed,  ///< wrap bytes in a valid frame
                            std::size_t* replies, std::size_t* error_replies,
                            std::vector<std::string>* violations) {
  const std::string label =
      input.label + (framed ? " (framed payload)" : " (raw stream)");
  std::string error;
  const std::optional<util::Fd> fd = util::unix_connect(socket_path, &error);
  if (!fd) {
    violations->push_back(label + ": cannot connect: " + error);
    return;
  }
  std::vector<std::uint8_t> wire;
  if (framed) {
    const auto len = static_cast<std::uint32_t>(input.bytes.size());
    wire = {static_cast<std::uint8_t>(len), static_cast<std::uint8_t>(len >> 8),
            static_cast<std::uint8_t>(len >> 16),
            static_cast<std::uint8_t>(len >> 24)};
  }
  wire.insert(wire.end(), input.bytes.begin(), input.bytes.end());
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd->get(), wire.data() + sent,
                             wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      break;  // server already dropped us — acceptable for hostile bytes
    }
    sent += static_cast<std::size_t>(n);
  }
  ::shutdown(fd->get(), SHUT_WR);
  if (util::poll_readable(fd->get(), 2000) <= 0) {
    violations->push_back(label + ": no response and no hangup within 2s");
    return;
  }
  std::string payload;
  const util::FrameStatus status =
      util::read_frame(fd->get(), &payload, &error);
  if (status != util::FrameStatus::kOk) {
    return;  // clean close / torn reply: server just dropped the peer
  }
  ++*replies;
  const std::optional<util::json::Value> doc =
      util::json::Value::parse(payload);
  const util::json::Value* field =
      doc && doc->is_object() ? doc->get("status") : nullptr;
  if (field == nullptr) {
    violations->push_back(label + ": reply is not a status document");
    return;
  }
  if (field->text() == "error") {
    ++*error_replies;
  } else if (framed) {
    // Framed replays carry raw corpus/mutant bytes as the payload; none
    // of them is a valid request, so an ok reply means the server
    // accepted garbage.
    violations->push_back(label + ": ok reply for a hostile payload");
  }
}

// --- Fault-injection clients -------------------------------------------------

/// Wire bytes of one framed fetch-service-v1 request.
std::vector<std::uint8_t> frame_request(const service::Request& request) {
  const std::string payload = service::request_json(request).dump();
  const auto len = static_cast<std::uint32_t>(payload.size());
  std::vector<std::uint8_t> wire;
  wire.reserve(payload.size() + 4);
  for (std::size_t k = 0; k < 4; ++k) {
    wire.push_back(static_cast<std::uint8_t>(len >> (8 * k)));
  }
  for (const char c : payload) {
    wire.push_back(static_cast<std::uint8_t>(c));
  }
  return wire;
}

/// Non-blocking-ish send that gives up when \p stop is raised or the
/// peer vanishes — an adversarial client thread must never wedge the
/// harness itself.
void send_until_stopped(int fd, const std::uint8_t* data, std::size_t len,
                        const std::atomic<bool>& stop) {
  std::size_t sent = 0;
  while (sent < len && !stop.load(std::memory_order_relaxed)) {
    const ssize_t n =
        ::send(fd, data + sent, len - sent, MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n > 0) {
      sent += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      (void)util::poll_writable(fd, 100);
      continue;
    }
    if (n < 0 && errno == EINTR) {
      continue;
    }
    return;  // peer gone (evicted) — expected for hostile clients
  }
}

/// Blocks until the peer hangs up (or \p stop). Returns true on EOF —
/// i.e. the server actively evicted this connection.
bool wait_for_eviction(int fd, const std::atomic<bool>& stop) {
  std::uint8_t scratch[256];
  for (;;) {
    if (stop.load(std::memory_order_relaxed)) {
      return false;
    }
    if (util::poll_readable(fd, 100) <= 0) {
      continue;
    }
    const ssize_t n = ::recv(fd, scratch, sizeof(scratch), MSG_DONTWAIT);
    if (n == 0) {
      return true;
    }
    if (n < 0 && errno != EAGAIN && errno != EWOULDBLOCK && errno != EINTR) {
      return true;  // reset counts as eviction
    }
  }
}

/// The overload acceptance scenario: an in-process daemon with the
/// ISSUE's shape (4 workers, 64 connections, bounded queue, short
/// deadlines) under \p clients adversarial connections, probed by a
/// healthy client throughout. Appends human-readable violations;
/// returns the counters for the JSON report.
service::ServerStats run_client_phase(std::size_t clients,
                                      const std::string& socket_path,
                                      std::vector<std::string>* violations,
                                      std::size_t* probe_answers,
                                      std::size_t* probe_overloaded) {
  constexpr std::uint64_t kIdleMs = 1'500;
  constexpr std::uint64_t kStallMs = 1'500;
  // ThreadSanitizer slows this CPU-bound pipeline by roughly an order
  // of magnitude; stretch the probe's patience (never the server's
  // eviction deadlines) so the gate still asserts liveness, just on a
  // slower clock.
#if defined(__SANITIZE_THREAD__) || FETCH_HAS_FEATURE(thread_sanitizer)
  constexpr std::uint64_t kProbeDeadlineMs = 30'000;
  constexpr std::uint64_t kProbeWindowMs = 12'000;
#else
  constexpr std::uint64_t kProbeDeadlineMs = 3'000;
  constexpr std::uint64_t kProbeWindowMs = 4'500;
#endif
  constexpr std::size_t kMaxConnections = 64;

  // One real binary for queries (multi-KiB responses: enough volume for
  // the read-stall cohort to wedge its write buffer).
  const std::string sample_path = "/tmp/fetch-hostile-client." +
                                  std::to_string(::getpid()) + ".bin";
  {
    const synth::ProgramSpec spec = synth::make_program(
        synth::projects()[0], synth::profile_for("gcc", "O2"), 0xc11e57u);
    const std::vector<std::uint8_t> image = synth::generate(spec).image;
    std::ofstream out(sample_path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(image.data()),
              static_cast<std::streamsize>(image.size()));
  }

  service::ServerOptions options;
  options.socket_path = socket_path;
  options.workers = 4;
  options.max_connections = kMaxConnections;
  options.queue_depth = 8;
  options.idle_timeout_ms = kIdleMs;
  options.write_stall_ms = kStallMs;
  service::ServiceServer server(options);
  std::string error;
  if (!server.start(&error)) {
    violations->push_back("clients: cannot start service: " + error);
    ::unlink(sample_path.c_str());
    return {};
  }
  std::thread runner([&server] { server.run(); });

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> evicted{0};
  std::vector<std::thread> hostiles;
  const std::vector<std::uint8_t> query_wire =
      frame_request({service::Op::kQuery, sample_path, {}});
  const std::vector<std::uint8_t> stats_wire =
      frame_request({service::Op::kStats, {}, {}});

  // Five cohorts, round-robin. Every cohort models one way a client can
  // hold resources without doing useful work.
  for (std::size_t i = 0; i < clients; ++i) {
    switch (i % 5) {
      case 0:  // idle camper: connect, never send a byte
        hostiles.emplace_back([&] {
          std::string cerr2;
          const auto fd = util::unix_connect(socket_path, &cerr2);
          if (fd && wait_for_eviction(fd->get(), stop)) {
            evicted.fetch_add(1, std::memory_order_relaxed);
          }
        });
        break;
      case 1:  // slow loris: trickle a valid frame one byte at a time
        hostiles.emplace_back([&] {
          std::string cerr2;
          const auto fd = util::unix_connect(socket_path, &cerr2);
          if (!fd) {
            return;
          }
          for (std::size_t k = 0;
               k < query_wire.size() && !stop.load(std::memory_order_relaxed);
               ++k) {
            const ssize_t n = ::send(fd->get(), query_wire.data() + k, 1,
                                     MSG_NOSIGNAL | MSG_DONTWAIT);
            if (n <= 0) {
              evicted.fetch_add(1, std::memory_order_relaxed);
              return;  // server hung up on the trickler
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
          }
        });
        break;
      case 2:  // half-open flood: connect, half-close, camp
        hostiles.emplace_back([&] {
          std::string cerr2;
          const auto fd = util::unix_connect(socket_path, &cerr2);
          if (!fd) {
            return;
          }
          ::shutdown(fd->get(), SHUT_WR);
          if (wait_for_eviction(fd->get(), stop)) {
            evicted.fetch_add(1, std::memory_order_relaxed);
          }
        });
        break;
      case 3:  // mid-frame disconnect churn
        hostiles.emplace_back([&] {
          while (!stop.load(std::memory_order_relaxed)) {
            std::string cerr2;
            const auto fd = util::unix_connect(socket_path, &cerr2);
            if (fd) {
              // Half a header, then vanish.
              send_until_stopped(fd->get(), query_wire.data(), 2, stop);
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(50));
          }
        });
        break;
      default:  // read-side stall: pipeline inline ops, never read
        hostiles.emplace_back([&] {
          std::string cerr2;
          const auto fd = util::unix_connect(socket_path, &cerr2);
          if (!fd) {
            return;
          }
          // Stats replies are produced inline (no queue to shed them), so
          // a pipelined burst piles hundreds of KiB of unread output onto
          // this connection — more than its socket buffer holds — and the
          // flush must hit EAGAIN and arm the write-stall deadline.
          for (std::size_t k = 0;
               k < 1'200 && !stop.load(std::memory_order_relaxed); ++k) {
            send_until_stopped(fd->get(), stats_wire.data(),
                               stats_wire.size(), stop);
          }
          // Hold the connection open without ever reading: the unread
          // responses pin the server's outbuf until its write-stall
          // clock evicts us (server_stats().write_stall_timeouts is the
          // authoritative witness; unread data masks the EOF here).
          while (!stop.load(std::memory_order_relaxed)) {
            std::this_thread::sleep_for(std::chrono::milliseconds(100));
          }
        });
        break;
    }
  }

  // Healthy probe: one query every ~100 ms for long enough to span the
  // idle/stall evictions. Every probe must complete — ok or an honest
  // `overloaded` — within its deadline; silence is the one outcome the
  // rebuilt server must never produce.
  const auto probe_until =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(kProbeWindowMs);
  while (std::chrono::steady_clock::now() < probe_until) {
    const auto t0 = std::chrono::steady_clock::now();
    service::ClientOptions copts;
    copts.timeout_ms = kProbeDeadlineMs;
    copts.retries = 2;
    std::string perr;
    auto client = service::ServiceClient::connect(socket_path, &perr, copts);
    if (!client) {
      violations->push_back("clients: healthy probe cannot connect: " + perr);
      break;
    }
    const auto result = client->query(sample_path, &perr);
    const auto elapsed_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - t0)
            .count();
    if (result) {
      ++*probe_answers;
    } else if (client->last_error_code() == service::kErrOverloaded) {
      ++*probe_answers;
      ++*probe_overloaded;
    } else {
      violations->push_back("clients: healthy probe failed (" + perr + ")");
      break;
    }
    if (elapsed_ms > static_cast<long long>(kProbeDeadlineMs + 500)) {
      violations->push_back("clients: probe took " +
                            std::to_string(elapsed_ms) + " ms (deadline " +
                            std::to_string(kProbeDeadlineMs) + " ms)");
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }

  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : hostiles) {
    t.join();
  }

  // Accept-time rejection: a burst past the connection limit must be
  // answered with `overloaded` frames (or an immediate hangup), never
  // left hanging in the backlog.
  {
    std::vector<util::Fd> flood;
    std::size_t refused = 0;
    for (std::size_t i = 0; i < kMaxConnections + 16; ++i) {
      std::string cerr2;
      auto fd = util::unix_connect(socket_path, &cerr2);
      if (!fd) {
        ++refused;  // kernel backlog full also counts as rejection
        continue;
      }
      flood.push_back(std::move(*fd));
    }
    std::size_t rejected_replies = 0;
    for (util::Fd& fd : flood) {
      if (util::poll_readable(fd.get(), 200) <= 0) {
        continue;
      }
      std::string payload;
      std::string ferr;
      if (util::read_frame(fd.get(), &payload, &ferr) ==
          util::FrameStatus::kOk) {
        const auto doc = util::json::Value::parse(payload);
        if (doc && service::response_error_code(*doc) ==
                       service::kErrOverloaded) {
          ++rejected_replies;
        }
      }
    }
    if (rejected_replies + refused == 0) {
      violations->push_back(
          "clients: no connection in an over-limit flood was rejected");
    }
  }

  const service::ServerStats stats = server.server_stats();
  if (stats.idle_timeouts == 0) {
    violations->push_back("clients: no idle camper was ever evicted");
  }
  if (stats.write_stall_timeouts == 0) {
    violations->push_back("clients: no stalled reader was ever evicted");
  }
  if (stats.rejected_connections == 0) {
    violations->push_back(
        "clients: rejected_connections stayed 0 despite the over-limit "
        "flood");
  }
  if (evicted.load(std::memory_order_relaxed) == 0) {
    violations->push_back(
        "clients: no adversarial client observed a server-side hangup");
  }

  server.stop();
  runner.join();
  ::unlink(socket_path.c_str());
  ::unlink(sample_path.c_str());
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus_dir;
  std::string socket_path;
  std::string json_path;
  std::string metrics_json_path;
  std::size_t max_rss_mb = 2048;
  bool skip_service = false;
  std::size_t clients = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--corpus" && i + 1 < argc) {
      corpus_dir = argv[++i];
    } else if (arg.rfind("--corpus=", 0) == 0) {
      corpus_dir = arg.substr(9);
    } else if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--metrics-json" && i + 1 < argc) {
      metrics_json_path = argv[++i];
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      metrics_json_path = arg.substr(15);
    } else if (arg == "--max-rss-mb" && i + 1 < argc) {
      max_rss_mb = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--skip-service") {
      skip_service = true;
    } else if (arg == "--clients" && i + 1 < argc) {
      clients = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg.rfind("--clients=", 0) == 0) {
      clients = static_cast<std::size_t>(
          std::stoul(std::string(arg.substr(10))));
    } else {
      return usage();
    }
  }
  if (corpus_dir.empty() && clients == 0) {
    return usage();
  }
  if (socket_path.empty()) {
    socket_path =
        "/tmp/fetch-hostile." + std::to_string(::getpid()) + ".sock";
  }

  // --- Collect inputs: every corpus seed + the structure-aware mutants.
  // A --clients-only run skips the byte-replay phases entirely.
  std::vector<HostileInput> inputs;
  if (!corpus_dir.empty()) {
    namespace fs = std::filesystem;
    std::error_code ec;
    std::vector<std::string> files;
    for (fs::recursive_directory_iterator it(corpus_dir, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (it->is_regular_file()) {
        files.push_back(it->path().string());
      }
    }
    if (ec || files.empty()) {
      std::cerr << "error: no corpus files under " << corpus_dir << "\n";
      return 2;
    }
    std::sort(files.begin(), files.end());
    for (const std::string& path : files) {
      HostileInput input;
      input.label = fs::path(path).parent_path().filename().string() + "/" +
                    fs::path(path).filename().string();
      if (!util::read_file_bytes(path, &input.bytes)) {
        std::cerr << "error: cannot read corpus file: " << path << "\n";
        return 2;
      }
      input.elf_shaped = elf_shaped(input.bytes);
      inputs.push_back(std::move(input));
    }
  }
  if (!corpus_dir.empty()) {
    for (HostileInput& mutant : make_mutants()) {
      inputs.push_back(std::move(mutant));
    }
  }

  std::vector<std::string> violations;
  std::size_t session_ok = 0;
  std::size_t session_error = 0;

  // --- Phase 1: the full pipeline, in-process.
  const eval::AnalysisSession session;
  for (const HostileInput& input : inputs) {
    try {
      const eval::FileAnalysis analysis = session.analyze_image(
          {input.bytes.data(), input.bytes.size()}, input.label,
          eval::AnalysisSession::Detail::kFull);
      if (analysis.row.ok) {
        ++session_ok;
        if (!input.elf_shaped) {
          violations.push_back(input.label +
                               ": ok row for non-ELF bytes (wrong-success)");
        }
      } else {
        ++session_error;
      }
    } catch (const std::exception& e) {
      violations.push_back(input.label + ": analyze_image threw: " + e.what());
    } catch (...) {
      violations.push_back(input.label + ": analyze_image threw");
    }
  }

  // --- Phase 2: the live service socket.
  std::size_t service_replies = 0;
  std::size_t service_error_replies = 0;
  std::size_t pings = 0;
  if (!skip_service && !inputs.empty()) {
    service::ServerOptions options;
    options.socket_path = socket_path;
    options.workers = 2;
    service::ServiceServer server(options);
    std::string error;
    if (!server.start(&error)) {
      std::cerr << "error: cannot start service: " << error << "\n";
      return 2;
    }
    std::thread runner([&server] { server.run(); });
    for (const HostileInput& input : inputs) {
      // A corpus seed that IS a well-formed shutdown frame would stop the
      // server mid-gate; skip its raw replay (the framed replay wraps the
      // whole frame as a payload, which is malformed JSON — safe).
      bool is_shutdown_frame = false;
      if (input.bytes.size() >= 4) {
        std::uint32_t adv = 0;
        for (std::size_t k = 0; k < 4; ++k) {
          adv |= static_cast<std::uint32_t>(input.bytes[k]) << (8 * k);
        }
        if (adv + 4 == input.bytes.size()) {
          const std::string payload(input.bytes.begin() + 4,
                                    input.bytes.end());
          std::string parse_error;
          const auto request = service::parse_request(payload, &parse_error);
          is_shutdown_frame = request && request->op == service::Op::kShutdown;
        }
      }
      if (!is_shutdown_frame) {
        replay_against_service(socket_path, input, /*framed=*/false,
                               &service_replies, &service_error_replies,
                               &violations);
      }
      replay_against_service(socket_path, input, /*framed=*/true,
                             &service_replies, &service_error_replies,
                             &violations);
      // Liveness: the daemon must answer a fresh ping after every replay.
      std::optional<service::ServiceClient> client =
          service::ServiceClient::connect(socket_path, &error);
      if (!client || !client->ping(&error)) {
        violations.push_back(input.label + ": ping after replay failed: " +
                             error);
        break;  // the daemon is gone; every further replay would repeat this
      }
      ++pings;
    }
    server.stop();
    runner.join();
    ::unlink(socket_path.c_str());
  }

  // --- Phase 3: adversarial clients against an overload-shaped daemon.
  service::ServerStats client_stats;
  std::size_t probe_answers = 0;
  std::size_t probe_overloaded = 0;
  if (clients != 0) {
    client_stats = run_client_phase(clients, socket_path, &violations,
                                    &probe_answers, &probe_overloaded);
  }

  // --- Memory bound.
  struct rusage usage_info {};
  ::getrusage(RUSAGE_SELF, &usage_info);
  const auto max_rss_kb = static_cast<std::size_t>(usage_info.ru_maxrss);
  if (max_rss_kb > max_rss_mb * 1024) {
    violations.push_back("peak RSS " + std::to_string(max_rss_kb / 1024) +
                         " MiB exceeds the " + std::to_string(max_rss_mb) +
                         " MiB bound");
  }

  // --- Report.
  std::cout << "hostile check: " << inputs.size() << " inputs, "
            << session_error << " error rows, " << session_ok
            << " degraded-ok rows";
  if (!skip_service) {
    std::cout << ", " << service_replies << " service replies ("
              << service_error_replies << " errors), " << pings
              << " live pings";
  }
  if (clients != 0) {
    std::cout << ", " << clients << " hostile clients (" << probe_answers
              << " probe answers, " << probe_overloaded << " overloaded, "
              << client_stats.idle_timeouts << " idle evictions, "
              << client_stats.write_stall_timeouts << " stall evictions, "
              << client_stats.rejected_connections << " rejected)";
  }
  std::cout << ", peak RSS " << max_rss_kb / 1024 << " MiB\n";
  for (const std::string& v : violations) {
    std::cout << "VIOLATION: " << v << "\n";
  }

  if (!json_path.empty()) {
    util::json::Value doc = util::json::Value::object();
    doc.set("schema", util::json::Value("fetch-hostile-v1"));
    doc.set("inputs", util::json::Value::number(
                          static_cast<std::uint64_t>(inputs.size())));
    util::json::Value session_doc = util::json::Value::object();
    session_doc.set("error_rows", util::json::Value::number(
                                      static_cast<std::uint64_t>(
                                          session_error)));
    session_doc.set("ok_rows", util::json::Value::number(
                                   static_cast<std::uint64_t>(session_ok)));
    doc.set("session", std::move(session_doc));
    util::json::Value service_doc = util::json::Value::object();
    service_doc.set("replies", util::json::Value::number(
                                   static_cast<std::uint64_t>(
                                       service_replies)));
    service_doc.set("error_replies",
                    util::json::Value::number(static_cast<std::uint64_t>(
                        service_error_replies)));
    service_doc.set("pings", util::json::Value::number(
                                 static_cast<std::uint64_t>(pings)));
    doc.set("service", std::move(service_doc));
    if (clients != 0) {
      util::json::Value clients_doc = util::json::Value::object();
      clients_doc.set("hostile", util::json::Value::number(
                                     static_cast<std::uint64_t>(clients)));
      clients_doc.set("probe_answers",
                      util::json::Value::number(
                          static_cast<std::uint64_t>(probe_answers)));
      clients_doc.set("probe_overloaded",
                      util::json::Value::number(
                          static_cast<std::uint64_t>(probe_overloaded)));
      clients_doc.set("server", service::server_stats_json(client_stats));
      doc.set("clients", std::move(clients_doc));
    }
    doc.set("max_rss_kb", util::json::Value::number(
                              static_cast<std::uint64_t>(max_rss_kb)));
    util::json::Value list = util::json::Value::array();
    for (const std::string& v : violations) {
      list.add(util::json::Value(v));
    }
    doc.set("violations", std::move(list));
    doc.set("verdict",
            util::json::Value(violations.empty() ? "PASS" : "FAIL"));
    std::ofstream out(json_path, std::ios::trunc);
    out << doc.dump() << "\n";
    out.close();
    if (out.fail()) {
      std::cerr << "error: cannot write --json file: " << json_path << "\n";
      return 2;
    }
    std::cerr << "json report: " << json_path << "\n";
  }

  if (!metrics_json_path.empty()) {
    // What the pipeline actually did under attack (error counters,
    // cache churn, stage latency) — archived next to the verdict JSON.
    std::string error;
    if (!obs::write_global_metrics_json(metrics_json_path, &error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    std::cerr << "metrics snapshot: " << metrics_json_path << "\n";
  }

  std::cout << (violations.empty() ? "hostile check: PASS\n"
                                   : "hostile check: FAIL\n");
  return violations.empty() ? 0 : 1;
}
