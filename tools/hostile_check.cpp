/// \file hostile_check.cpp
/// Adversarial-input gate: feed every fuzz-corpus seed plus a set of
/// structure-aware ELF mutants (truncations, lying section headers, a
/// lying .eh_frame_hdr fde_count, overlapping FDEs, garbage unwind data)
/// through the full analysis pipeline and the live service socket, and
/// FAIL on any crash, hang, unbounded allocation, or wrong-success
/// outcome. CI runs this per push (the `stripped-and-hostile` job) and
/// archives the `fetch-hostile-v1` JSON artifact.
///
///   hostile_check --corpus DIR [--socket PATH] [--json PATH]
///                 [--max-rss-mb N] [--skip-service]
///
/// Outcome taxonomy (see DESIGN.md, "Stripped & hostile evaluation"):
///   - non-ELF bytes MUST produce an error row (ok == false); an ok row
///     for garbage is a wrong-success violation,
///   - well-formed ELF containers with hostile metadata may produce an
///     error row OR a degraded ok row — either is acceptable, crashing
///     or throwing is not (AnalysisSession::analyze_image never throws),
///   - the service must answer every hostile frame with an error (or
///     close the torn connection) and still answer a fresh ping after
///     every single replay,
///   - peak RSS stays under --max-rss-mb (default 2048): a 4-byte
///     header must not buy a gigabyte allocation.

#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "ehframe/eh_builder.hpp"
#include "ehframe/eh_frame.hpp"
#include "ehframe/eh_frame_hdr.hpp"
#include "elf/elf_builder.hpp"
#include "elf/elf_file.hpp"
#include "eval/session.hpp"
#include "service/client.hpp"
#include "service/protocol.hpp"
#include "service/server.hpp"
#include "synth/codegen.hpp"
#include "synth/corpus.hpp"
#include "util/framing.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"
#include "util/socket.hpp"

namespace {

using namespace fetch;

struct HostileInput {
  std::string label;
  std::vector<std::uint8_t> bytes;
  bool elf_shaped = false;  ///< carries the ELF64 magic (see below)
};

int usage() {
  std::cerr << "usage: hostile_check --corpus DIR [--socket PATH]\n"
               "                     [--json PATH] [--max-rss-mb N]\n"
               "                     [--skip-service]\n";
  return 2;
}

/// Whether the pipeline is allowed to report success for these bytes:
/// anything that does not even start with the ELF64 magic must come back
/// as an error row.
bool elf_shaped(const std::vector<std::uint8_t>& bytes) {
  return bytes.size() >= 5 && bytes[0] == 0x7f && bytes[1] == 'E' &&
         bytes[2] == 'L' && bytes[3] == 'F' && bytes[4] == 2 /*ELFCLASS64*/;
}

// Little-endian patch helpers for the mutant builders. Mutants are
// hostile *by construction*; this is the one place in the tree where
// writing raw offsets is the point (tools/ sits outside the
// trust-boundary lint on purpose).
void patch_u16(std::vector<std::uint8_t>* b, std::size_t off,
               std::uint16_t v) {
  if (off + 2 <= b->size()) {
    (*b)[off] = static_cast<std::uint8_t>(v);
    (*b)[off + 1] = static_cast<std::uint8_t>(v >> 8);
  }
}
void patch_u32(std::vector<std::uint8_t>* b, std::size_t off,
               std::uint32_t v) {
  for (std::size_t i = 0; i < 4 && off + i < b->size(); ++i) {
    (*b)[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}
void patch_u64(std::vector<std::uint8_t>* b, std::size_t off,
               std::uint64_t v) {
  for (std::size_t i = 0; i < 8 && off + i < b->size(); ++i) {
    (*b)[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}

/// Finds the file offset of section \p name via a (trusted) parse of the
/// pristine base image. Returns {offset, size}; {0, 0} when absent.
std::pair<std::uint64_t, std::uint64_t> section_span(const elf::ElfFile& elf,
                                                     std::string_view name) {
  for (const elf::Section& s : elf.sections()) {
    if (s.name == name) {
      return {s.offset, s.size};
    }
  }
  return {0, 0};
}

/// Structure-aware mutants derived from one well-formed synthetic binary.
std::vector<HostileInput> make_mutants() {
  std::vector<HostileInput> out;
  // A realistic base: one small self-built corpus program, stripped like
  // the evaluation corpus.
  synth::ProgramSpec spec = synth::make_program(
      synth::projects()[1], synth::profile_for("gcc", "O2"), 0x4057u);
  spec.stripped = true;
  const std::vector<std::uint8_t> base = synth::generate(spec).image;
  const elf::ElfFile parsed({base.data(), base.size()});
  const auto [eh_off, eh_size] = section_span(parsed, ".eh_frame");
  const auto [hdr_off, hdr_size] = section_span(parsed, ".eh_frame_hdr");

  auto add = [&out](std::string label, std::vector<std::uint8_t> bytes) {
    out.push_back({std::move(label), std::move(bytes)});
  };

  // Whole-file truncations: mid-Ehdr, mid-image, one byte short.
  add("mutant/trunc_ehdr", {base.begin(), base.begin() + 32});
  add("mutant/trunc_half",
      {base.begin(), base.begin() + static_cast<std::ptrdiff_t>(
                                        base.size() / 2)});
  add("mutant/trunc_tail", {base.begin(), base.end() - 1});

  // Lying Ehdr fields.
  std::vector<std::uint8_t> m = base;
  patch_u64(&m, 0x28, 0xfffffffffffff000ULL);  // e_shoff into the void
  add("mutant/bad_shoff", std::move(m));
  m = base;
  patch_u16(&m, 0x3c, 0xffff);  // e_shnum: 65535 headers
  add("mutant/huge_shnum", std::move(m));
  m = base;
  patch_u16(&m, 0x3a, 0);  // e_shentsize zero
  add("mutant/zero_shentsize", std::move(m));

  // Truncated .eh_frame: cut the file in the middle of the CFI bytes.
  if (eh_off != 0 && eh_size > 8) {
    add("mutant/eh_frame_cut",
        {base.begin(),
         base.begin() + static_cast<std::ptrdiff_t>(eh_off + eh_size / 2)});
    // Garbage .eh_frame: size preserved, content replaced.
    m = base;
    std::uint32_t x = 0x9e3779b9;
    for (std::uint64_t i = 0; i < eh_size; ++i) {
      x = x * 1664525u + 1013904223u;
      m[eh_off + i] = static_cast<std::uint8_t>(x >> 24);
    }
    add("mutant/eh_frame_garbage", std::move(m));
  }

  // Lying .eh_frame_hdr: fde_count claims 2^32-1 entries (the header
  // layout is version/encodings (4) + eh_frame_ptr (4) + fde_count (4)).
  if (hdr_off != 0 && hdr_size >= 12) {
    m = base;
    patch_u32(&m, hdr_off + 8, 0xffffffffu);
    add("mutant/lying_fde_count", std::move(m));
  }

  // Section header that lies about .eh_frame's size: extend sh_size far
  // past end-of-file. Locate the matching header by its sh_offset.
  if (eh_off != 0) {
    m = base;
    std::uint64_t shoff = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      shoff |= static_cast<std::uint64_t>(base[0x28 + i]) << (8 * i);
    }
    const std::uint16_t shnum =
        static_cast<std::uint16_t>(base[0x3c] | (base[0x3d] << 8));
    const std::uint16_t shentsize =
        static_cast<std::uint16_t>(base[0x3a] | (base[0x3b] << 8));
    for (std::uint16_t i = 0; i < shnum; ++i) {
      const std::size_t off = shoff + std::size_t{i} * shentsize;
      std::uint64_t sh_offset = 0;
      for (std::size_t k = 0; k < 8; ++k) {
        sh_offset |= static_cast<std::uint64_t>(m[off + 0x18 + k]) << (8 * k);
      }
      if (sh_offset == eh_off) {
        patch_u64(&m, off + 0x20, 0x7fffffffffffULL);  // sh_size lie
        break;
      }
    }
    add("mutant/eh_frame_size_lie", std::move(m));
  }

  // Overlapping FDEs: a fresh tiny ELF whose .eh_frame carries two FDEs
  // over intersecting PC ranges (no compiler emits this; Algorithm 1's
  // range logic must survive it).
  {
    const std::uint64_t text_addr = 0x401000;
    const std::uint64_t hdr_addr = 0x4ff000;
    const std::uint64_t frame_addr = 0x500000;
    std::vector<std::uint8_t> text(64, 0x90);  // nop sled
    text.back() = 0xc3;                        // ret
    eh::EhFrameBuilder ehb;
    ehb.add_fde(text_addr, 48, {});
    ehb.add_fde(text_addr + 16, 48, {});  // overlaps the first
    std::vector<std::uint8_t> eh_bytes = ehb.build(frame_addr);
    const eh::EhFrame overlap_eh =
        eh::EhFrame::parse({eh_bytes.data(), eh_bytes.size()}, frame_addr);
    std::vector<std::uint8_t> hdr_bytes =
        eh::build_eh_frame_hdr(overlap_eh, frame_addr, hdr_addr);
    elf::ElfBuilder builder;
    builder.add_section(".text", elf::kShtProgbits,
                        elf::kShfAlloc | elf::kShfExecinstr, text_addr,
                        std::move(text), 16);
    builder.add_section(".eh_frame_hdr", elf::kShtProgbits, elf::kShfAlloc,
                        hdr_addr, std::move(hdr_bytes), 4);
    builder.add_section(".eh_frame", elf::kShtProgbits, elf::kShfAlloc,
                        frame_addr, std::move(eh_bytes), 8);
    builder.emit_symtab(false);
    builder.set_entry(text_addr);
    add("mutant/overlapping_fdes", builder.build());
  }

  for (HostileInput& input : out) {
    input.elf_shaped = elf_shaped(input.bytes);
  }
  return out;
}

/// Sends raw bytes, half-closes, and reads at most one reply frame. A
/// missing reply (torn frame → server closes silently) is fine; a reply
/// that is not a fetch-service-v1 status document is a violation.
void replay_against_service(const std::string& socket_path,
                            const HostileInput& input,
                            bool framed,  ///< wrap bytes in a valid frame
                            std::size_t* replies, std::size_t* error_replies,
                            std::vector<std::string>* violations) {
  const std::string label =
      input.label + (framed ? " (framed payload)" : " (raw stream)");
  std::string error;
  const std::optional<util::Fd> fd = util::unix_connect(socket_path, &error);
  if (!fd) {
    violations->push_back(label + ": cannot connect: " + error);
    return;
  }
  std::vector<std::uint8_t> wire;
  if (framed) {
    const auto len = static_cast<std::uint32_t>(input.bytes.size());
    wire = {static_cast<std::uint8_t>(len), static_cast<std::uint8_t>(len >> 8),
            static_cast<std::uint8_t>(len >> 16),
            static_cast<std::uint8_t>(len >> 24)};
  }
  wire.insert(wire.end(), input.bytes.begin(), input.bytes.end());
  std::size_t sent = 0;
  while (sent < wire.size()) {
    const ssize_t n = ::send(fd->get(), wire.data() + sent,
                             wire.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) {
      break;  // server already dropped us — acceptable for hostile bytes
    }
    sent += static_cast<std::size_t>(n);
  }
  ::shutdown(fd->get(), SHUT_WR);
  if (util::poll_readable(fd->get(), 2000) <= 0) {
    violations->push_back(label + ": no response and no hangup within 2s");
    return;
  }
  std::string payload;
  const util::FrameStatus status =
      util::read_frame(fd->get(), &payload, &error);
  if (status != util::FrameStatus::kOk) {
    return;  // clean close / torn reply: server just dropped the peer
  }
  ++*replies;
  const std::optional<util::json::Value> doc =
      util::json::Value::parse(payload);
  const util::json::Value* field =
      doc && doc->is_object() ? doc->get("status") : nullptr;
  if (field == nullptr) {
    violations->push_back(label + ": reply is not a status document");
    return;
  }
  if (field->text() == "error") {
    ++*error_replies;
  } else if (framed) {
    // Framed replays carry raw corpus/mutant bytes as the payload; none
    // of them is a valid request, so an ok reply means the server
    // accepted garbage.
    violations->push_back(label + ": ok reply for a hostile payload");
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string corpus_dir;
  std::string socket_path;
  std::string json_path;
  std::size_t max_rss_mb = 2048;
  bool skip_service = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--corpus" && i + 1 < argc) {
      corpus_dir = argv[++i];
    } else if (arg.rfind("--corpus=", 0) == 0) {
      corpus_dir = arg.substr(9);
    } else if (arg == "--socket" && i + 1 < argc) {
      socket_path = argv[++i];
    } else if (arg.rfind("--socket=", 0) == 0) {
      socket_path = arg.substr(9);
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(7);
    } else if (arg == "--max-rss-mb" && i + 1 < argc) {
      max_rss_mb = static_cast<std::size_t>(std::stoul(argv[++i]));
    } else if (arg == "--skip-service") {
      skip_service = true;
    } else {
      return usage();
    }
  }
  if (corpus_dir.empty()) {
    return usage();
  }
  if (socket_path.empty()) {
    socket_path =
        "/tmp/fetch-hostile." + std::to_string(::getpid()) + ".sock";
  }

  // --- Collect inputs: every corpus seed + the structure-aware mutants.
  std::vector<HostileInput> inputs;
  {
    namespace fs = std::filesystem;
    std::error_code ec;
    std::vector<std::string> files;
    for (fs::recursive_directory_iterator it(corpus_dir, ec), end;
         !ec && it != end; it.increment(ec)) {
      if (it->is_regular_file()) {
        files.push_back(it->path().string());
      }
    }
    if (ec || files.empty()) {
      std::cerr << "error: no corpus files under " << corpus_dir << "\n";
      return 2;
    }
    std::sort(files.begin(), files.end());
    for (const std::string& path : files) {
      HostileInput input;
      input.label = fs::path(path).parent_path().filename().string() + "/" +
                    fs::path(path).filename().string();
      if (!util::read_file_bytes(path, &input.bytes)) {
        std::cerr << "error: cannot read corpus file: " << path << "\n";
        return 2;
      }
      input.elf_shaped = elf_shaped(input.bytes);
      inputs.push_back(std::move(input));
    }
  }
  for (HostileInput& mutant : make_mutants()) {
    inputs.push_back(std::move(mutant));
  }

  std::vector<std::string> violations;
  std::size_t session_ok = 0;
  std::size_t session_error = 0;

  // --- Phase 1: the full pipeline, in-process.
  const eval::AnalysisSession session;
  for (const HostileInput& input : inputs) {
    try {
      const eval::FileAnalysis analysis = session.analyze_image(
          {input.bytes.data(), input.bytes.size()}, input.label,
          eval::AnalysisSession::Detail::kFull);
      if (analysis.row.ok) {
        ++session_ok;
        if (!input.elf_shaped) {
          violations.push_back(input.label +
                               ": ok row for non-ELF bytes (wrong-success)");
        }
      } else {
        ++session_error;
      }
    } catch (const std::exception& e) {
      violations.push_back(input.label + ": analyze_image threw: " + e.what());
    } catch (...) {
      violations.push_back(input.label + ": analyze_image threw");
    }
  }

  // --- Phase 2: the live service socket.
  std::size_t service_replies = 0;
  std::size_t service_error_replies = 0;
  std::size_t pings = 0;
  if (!skip_service) {
    service::ServerOptions options;
    options.socket_path = socket_path;
    options.workers = 2;
    service::ServiceServer server(options);
    std::string error;
    if (!server.start(&error)) {
      std::cerr << "error: cannot start service: " << error << "\n";
      return 2;
    }
    std::thread runner([&server] { server.run(); });
    for (const HostileInput& input : inputs) {
      // A corpus seed that IS a well-formed shutdown frame would stop the
      // server mid-gate; skip its raw replay (the framed replay wraps the
      // whole frame as a payload, which is malformed JSON — safe).
      bool is_shutdown_frame = false;
      if (input.bytes.size() >= 4) {
        std::uint32_t adv = 0;
        for (std::size_t k = 0; k < 4; ++k) {
          adv |= static_cast<std::uint32_t>(input.bytes[k]) << (8 * k);
        }
        if (adv + 4 == input.bytes.size()) {
          const std::string payload(input.bytes.begin() + 4,
                                    input.bytes.end());
          std::string parse_error;
          const auto request = service::parse_request(payload, &parse_error);
          is_shutdown_frame = request && request->op == service::Op::kShutdown;
        }
      }
      if (!is_shutdown_frame) {
        replay_against_service(socket_path, input, /*framed=*/false,
                               &service_replies, &service_error_replies,
                               &violations);
      }
      replay_against_service(socket_path, input, /*framed=*/true,
                             &service_replies, &service_error_replies,
                             &violations);
      // Liveness: the daemon must answer a fresh ping after every replay.
      std::optional<service::ServiceClient> client =
          service::ServiceClient::connect(socket_path, &error);
      if (!client || !client->ping(&error)) {
        violations.push_back(input.label + ": ping after replay failed: " +
                             error);
        break;  // the daemon is gone; every further replay would repeat this
      }
      ++pings;
    }
    server.stop();
    runner.join();
    ::unlink(socket_path.c_str());
  }

  // --- Memory bound.
  struct rusage usage_info {};
  ::getrusage(RUSAGE_SELF, &usage_info);
  const auto max_rss_kb = static_cast<std::size_t>(usage_info.ru_maxrss);
  if (max_rss_kb > max_rss_mb * 1024) {
    violations.push_back("peak RSS " + std::to_string(max_rss_kb / 1024) +
                         " MiB exceeds the " + std::to_string(max_rss_mb) +
                         " MiB bound");
  }

  // --- Report.
  std::cout << "hostile check: " << inputs.size() << " inputs, "
            << session_error << " error rows, " << session_ok
            << " degraded-ok rows";
  if (!skip_service) {
    std::cout << ", " << service_replies << " service replies ("
              << service_error_replies << " errors), " << pings
              << " live pings";
  }
  std::cout << ", peak RSS " << max_rss_kb / 1024 << " MiB\n";
  for (const std::string& v : violations) {
    std::cout << "VIOLATION: " << v << "\n";
  }

  if (!json_path.empty()) {
    util::json::Value doc = util::json::Value::object();
    doc.set("schema", util::json::Value("fetch-hostile-v1"));
    doc.set("inputs", util::json::Value::number(
                          static_cast<std::uint64_t>(inputs.size())));
    util::json::Value session_doc = util::json::Value::object();
    session_doc.set("error_rows", util::json::Value::number(
                                      static_cast<std::uint64_t>(
                                          session_error)));
    session_doc.set("ok_rows", util::json::Value::number(
                                   static_cast<std::uint64_t>(session_ok)));
    doc.set("session", std::move(session_doc));
    util::json::Value service_doc = util::json::Value::object();
    service_doc.set("replies", util::json::Value::number(
                                   static_cast<std::uint64_t>(
                                       service_replies)));
    service_doc.set("error_replies",
                    util::json::Value::number(static_cast<std::uint64_t>(
                        service_error_replies)));
    service_doc.set("pings", util::json::Value::number(
                                 static_cast<std::uint64_t>(pings)));
    doc.set("service", std::move(service_doc));
    doc.set("max_rss_kb", util::json::Value::number(
                              static_cast<std::uint64_t>(max_rss_kb)));
    util::json::Value list = util::json::Value::array();
    for (const std::string& v : violations) {
      list.add(util::json::Value(v));
    }
    doc.set("violations", std::move(list));
    doc.set("verdict",
            util::json::Value(violations.empty() ? "PASS" : "FAIL"));
    std::ofstream out(json_path, std::ios::trunc);
    out << doc.dump() << "\n";
    out.close();
    if (out.fail()) {
      std::cerr << "error: cannot write --json file: " << json_path << "\n";
      return 2;
    }
    std::cerr << "json report: " << json_path << "\n";
  }

  std::cout << (violations.empty() ? "hostile check: PASS\n"
                                   : "hostile check: FAIL\n");
  return violations.empty() ? 0 : 1;
}
