/// \file strip_tool.cpp
/// Producer side of the stripped evaluation tier: strips an ELF64 binary
/// (drop .symtab/.strtab, optionally .dynsym/.dynstr) and captures the
/// binary's *pre-strip* symbol-table ground truth into a fetch-truth-v1
/// sidecar (`<output>.truth.json`) so the stripped copy can still be
/// scored with meaningful precision (`--truth sidecar` in fetch-cli
/// batch / realbin_check).
///
///   strip_tool [--drop-dynsym] [--truth-out PATH | --no-truth]
///              -o OUTPUT INPUT
///
/// The transform is elf::strip_image: deterministic, idempotent, and
/// layout-preserving (allocated sections keep their offsets and
/// addresses), so detection results on the stripped copy differ from the
/// original only through the missing symbol tables.

#include <fstream>
#include <iostream>
#include <string>
#include <string_view>

#include "elf/elf_file.hpp"
#include "elf/strip.hpp"
#include "eval/truth_sidecar.hpp"
#include "util/error.hpp"
#include "util/fs.hpp"

namespace {

using namespace fetch;

int usage() {
  std::cerr << "usage: strip_tool [--drop-dynsym] [--truth-out PATH | "
               "--no-truth]\n"
               "                  -o OUTPUT INPUT\n";
  return 2;
}

bool write_bytes(const std::string& path,
                 const std::vector<std::uint8_t>& bytes, std::string* error) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    *error = "cannot open output file: " + path;
    return false;
  }
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  out.close();
  if (out.fail()) {
    *error = "cannot write output file: " + path;
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  elf::StripOptions options;
  std::string input;
  std::string output;
  std::string truth_out;
  bool no_truth = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--drop-dynsym") {
      options.drop_dynsym = true;
    } else if (arg == "--no-truth") {
      no_truth = true;
    } else if (arg == "--truth-out" && i + 1 < argc) {
      truth_out = argv[++i];
    } else if (arg.rfind("--truth-out=", 0) == 0) {
      truth_out = arg.substr(12);
    } else if (arg == "-o" && i + 1 < argc) {
      output = argv[++i];
    } else if (!arg.empty() && arg.front() == '-') {
      return usage();
    } else if (input.empty()) {
      input = argv[i];
    } else {
      return usage();
    }
  }
  if (input.empty() || output.empty() || (no_truth && !truth_out.empty())) {
    return usage();
  }

  std::vector<std::uint8_t> image;
  if (!util::read_file_bytes(input, &image)) {
    std::cerr << "error: cannot read input file: " << input << "\n";
    return 1;
  }

  try {
    // Truth must be captured from the *original* image: that is the whole
    // point of the sidecar — the stripped copy cannot produce it anymore.
    const elf::ElfFile original({image.data(), image.size()});
    const elf::FunctionTruth truth = original.function_truth();

    const elf::StripResult result = elf::strip_image(
        {image.data(), image.size()}, options);

    std::string error;
    if (!write_bytes(output, result.image, &error)) {
      std::cerr << "error: " << error << "\n";
      return 1;
    }
    if (!no_truth) {
      const std::string sidecar =
          truth_out.empty() ? eval::truth_sidecar_path(output) : truth_out;
      if (!eval::write_truth_sidecar(sidecar, truth, &error)) {
        std::cerr << "error: " << error << "\n";
        return 1;
      }
      std::cout << "truth sidecar: " << sidecar << " (" << truth.starts.size()
                << " starts, source " << truth.source << ")\n";
    }
    std::cout << "stripped " << input << " -> " << output << " (dropped";
    if (result.dropped.empty()) {
      std::cout << " nothing";
    } else {
      for (const std::string& name : result.dropped) {
        std::cout << " " << name;
      }
    }
    std::cout << ")\n";
  } catch (const ParseError& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
  return 0;
}
