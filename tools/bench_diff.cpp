/// \file bench_diff.cpp
/// Perf-regression comparator for `fetch-bench-v1` JSON reports: match the
/// `results` rows of a baseline and a current snapshot by name and flag
/// values that moved outside a (deliberately generous) tolerance band.
/// Timing on shared CI runners is noisy, so CI runs this as a
/// *non-blocking* warn step — a red ratio is a prompt to look at the
/// artifact history, not an automatic revert (see DESIGN.md).
///
///   bench_diff [--tolerance X] [--strict] BASELINE CURRENT
///
/// A row regresses when current/baseline > X or < 1/X (default X = 3.0 —
/// wide enough to absorb runner variance, narrow enough to catch an
/// accidental O(n^2) or a dropped cache). Rows present in only one file
/// are reported informationally. Exit code: 0 unless --strict is given,
/// in which case any flagged row exits 1.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "eval/table.hpp"
#include "util/json.hpp"

namespace {

using namespace fetch;
using util::json::Value;

int usage() {
  std::cerr << "usage: bench_diff [--tolerance X] [--strict] "
               "BASELINE.json CURRENT.json\n";
  return 2;
}

bool load_report(const std::string& path, Value* out, std::string* error) {
  std::ifstream in(path);
  if (!in) {
    *error = "cannot open " + path;
    return false;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  auto doc = Value::parse(buffer.str());
  if (!doc) {
    *error = "not valid JSON: " + path;
    return false;
  }
  const Value* schema = doc->get("schema");
  if (schema == nullptr || schema->text() != "fetch-bench-v1") {
    *error = "not a fetch-bench-v1 report: " + path;
    return false;
  }
  if (const Value* results = doc->get("results");
      results == nullptr || !results->is_array()) {
    *error = "report has no results array: " + path;
    return false;
  }
  *out = std::move(*doc);
  return true;
}

const Value* find_row(const Value& report, const std::string& name) {
  for (const Value& row : report.get("results")->items()) {
    const Value* row_name = row.get("name");
    if (row_name != nullptr && row_name->text() == name) {
      return &row;
    }
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  double tolerance = 3.0;
  bool strict = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::strtod(argv[++i], nullptr);
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      tolerance = std::strtod(std::string(arg.substr(12)).c_str(), nullptr);
    } else if (arg == "--strict") {
      strict = true;
    } else if (!arg.empty() && arg.front() == '-') {
      return usage();
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.size() != 2 || tolerance <= 1.0) {
    return usage();
  }

  Value baseline;
  Value current;
  std::string error;
  if (!load_report(paths[0], &baseline, &error) ||
      !load_report(paths[1], &current, &error)) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }

  eval::TextTable table({"metric", "baseline", "current", "ratio", "status"});
  std::size_t flagged = 0;
  std::size_t compared = 0;
  for (const Value& row : baseline.get("results")->items()) {
    const Value* name = row.get("name");
    const Value* base_value = row.get("value");
    if (name == nullptr || base_value == nullptr) {
      continue;
    }
    const Value* other = find_row(current, name->text());
    if (other == nullptr || other->get("value") == nullptr) {
      table.add_row({name->text(), base_value->text(), "-", "-", "missing"});
      continue;
    }
    const double base = base_value->as_double();
    const double cur = other->get("value")->as_double();
    if (base <= 0.0) {
      table.add_row({name->text(), base_value->text(),
                     other->get("value")->text(), "-", "skipped"});
      continue;
    }
    ++compared;
    const double ratio = cur / base;
    const bool bad = ratio > tolerance || ratio < 1.0 / tolerance;
    flagged += bad ? 1 : 0;
    table.add_row({name->text(), base_value->text(),
                   other->get("value")->text(), eval::fmt(ratio, 2),
                   bad ? "WARN" : "ok"});
  }
  for (const Value& row : current.get("results")->items()) {
    const Value* name = row.get("name");
    if (name != nullptr && find_row(baseline, name->text()) == nullptr) {
      const Value* value = row.get("value");
      table.add_row({name->text(), "-", value == nullptr ? "-" : value->text(),
                     "-", "new"});
    }
  }
  table.print(std::cout);
  std::cout << "\ncompared " << compared << " metrics, " << flagged
            << " outside " << eval::fmt(tolerance, 1) << "x tolerance\n";
  if (flagged != 0) {
    std::cout << "note: CI treats this as a warning, not a failure — "
                 "check artifact history before acting\n";
  }
  return strict && flagged != 0 ? 1 : 0;
}
