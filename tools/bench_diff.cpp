/// \file bench_diff.cpp
/// Perf-regression comparator for `fetch-bench-v1` JSON reports, the
/// blocking CI gate behind every checked-in baseline. Rows are matched
/// by name and judged under per-metric tolerance policies loaded from a
/// checked-in config (`bench/baselines/tolerances.json`, schema
/// fetch-tol-v1): ratio band, direction (higher-/lower-is-better, so an
/// improvement never fails), absolute slack for sub-millisecond jitter,
/// and explicit warn-only marks for metrics too noisy to block on. See
/// DESIGN.md, "Experiment matrix & perf gating".
///
///   bench_diff [--tolerances FILE | --tolerance X] [--strict]
///              [--json PATH] [--markdown PATH] BASELINE CURRENT
///
///   --tolerances FILE  per-metric policy config (the CI mode)
///   --tolerance X      legacy flat symmetric band (default X = 3.0)
///   --json PATH        machine-readable fetch-bench-diff-v1 verdict
///   --markdown PATH    GitHub step-summary table
///
/// Exit codes (--strict): 0 ok or warn-only movement · 1 a blocking
/// metric regressed · 3 a baseline metric is missing from CURRENT (and
/// nothing regressed) · 2 usage or unreadable input. Without --strict
/// everything but a load/usage error exits 0 (advisory mode). Missing
/// metrics get their own code because "someone renamed a metric" must
/// not triage like "the hot path got slower".

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "eval/table.hpp"
#include "exp/tolerance.hpp"
#include "util/json.hpp"
#include "util/json_schema.hpp"

namespace {

using namespace fetch;
using util::json::Value;

int usage() {
  std::cerr << "usage: bench_diff [--tolerances FILE | --tolerance X] "
               "[--strict] [--json PATH] [--markdown PATH] "
               "BASELINE.json CURRENT.json\n";
  return 2;
}

bool load_report(const std::string& path, Value* out, std::string* error) {
  auto doc = util::json::load_file(path, error);
  if (!doc || !util::json::expect_schema(*doc, "fetch-bench-v1", error,
                                         path)) {
    return false;
  }
  if (const Value* results = doc->get("results");
      results == nullptr || !results->is_array()) {
    *error = "report has no results array: " + path;
    return false;
  }
  *out = std::move(*doc);
  return true;
}

bool write_text_file(const std::string& path, const std::string& text,
                     std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
  out.close();
  if (out.fail()) {
    *error = "cannot write " + path;
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double flat_tolerance = 3.0;
  std::string tolerances_path;
  std::string json_path;
  std::string markdown_path;
  bool strict = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      flat_tolerance = std::strtod(argv[++i], nullptr);
    } else if (arg.rfind("--tolerance=", 0) == 0) {
      flat_tolerance =
          std::strtod(std::string(arg.substr(12)).c_str(), nullptr);
    } else if (arg == "--tolerances" && i + 1 < argc) {
      tolerances_path = argv[++i];
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg == "--markdown" && i + 1 < argc) {
      markdown_path = argv[++i];
    } else if (arg == "--strict") {
      strict = true;
    } else if (!arg.empty() && arg.front() == '-') {
      return usage();
    } else {
      paths.emplace_back(argv[i]);
    }
  }
  if (paths.size() != 2 || flat_tolerance <= 1.0) {
    return usage();
  }

  std::string error;
  exp::TolerancePolicy policy = exp::TolerancePolicy::flat(flat_tolerance);
  std::string policy_source =
      "flat " + eval::fmt(flat_tolerance, 1) + "x";
  if (!tolerances_path.empty()) {
    auto loaded = exp::TolerancePolicy::load(tolerances_path, &error);
    if (!loaded) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    policy = std::move(*loaded);
    policy_source = tolerances_path;
  }

  Value baseline;
  Value current;
  if (!load_report(paths[0], &baseline, &error) ||
      !load_report(paths[1], &current, &error)) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }

  const exp::DiffReport report = exp::diff_reports(baseline, current, policy);

  eval::TextTable table({"metric", "baseline", "current", "ratio", "status"});
  for (const exp::MetricVerdict& v : report.rows) {
    table.add_row({v.name, v.baseline_text.empty() ? "-" : v.baseline_text,
                   v.current_text.empty() ? "-" : v.current_text,
                   v.ratio == 0.0 ? "-" : eval::fmt(v.ratio, 2),
                   std::string(exp::status_name(v.status))});
  }
  table.print(std::cout);
  std::cout << "\npolicy: " << policy_source << " — " << report.compared
            << " compared, " << report.regressed << " regressed, "
            << report.warned << " warned, " << report.missing
            << " missing, " << report.added << " new\n";

  if (!json_path.empty()) {
    const Value verdict =
        exp::verdict_json(report, paths[0], paths[1], policy_source);
    if (!write_text_file(json_path, verdict.dump() + "\n", &error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
  }
  if (!markdown_path.empty()) {
    const std::string md = exp::verdict_markdown(
        report, "bench_diff " + paths[0] + " vs " + paths[1]);
    if (!write_text_file(markdown_path, md, &error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
  }

  if (!strict) {
    if (report.gate_failed() || report.any_missing()) {
      std::cout << "note: advisory mode (no --strict) — exit 0 despite the "
                   "flagged rows above\n";
    }
    return 0;
  }
  if (report.gate_failed()) {
    std::cout << "gate: REGRESSED — if intended, refresh the baseline "
                 "(exp_run --update-baselines) and commit the reviewed "
                 "diff\n";
    return 1;
  }
  if (report.any_missing()) {
    std::cout << "gate: baseline metric(s) missing from " << paths[1]
              << " — renamed or dropped without a baseline update\n";
    return 3;
  }
  return 0;
}
