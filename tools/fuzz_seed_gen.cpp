/// \file fuzz_seed_gen.cpp
/// Deterministic generator for the checked-in fuzz seed corpora under
/// tests/fuzz_corpus/. Valid seeds come from the repo's own builders
/// (EhFrameBuilder, ElfBuilder, protocol request_json) so they exercise
/// the same byte layouts the synthesizer emits; malformed seeds are
/// handcrafted regressions for bugs this repo has already fixed:
///
///   ehframe/lying_fde_count.bin    .eh_frame_hdr whose fde_count field
///                                  claims 2^32-1 entries in a 20-byte
///                                  section (the allocation clamp from
///                                  the eh_frame_hdr hardening)
///   service_frame/oversize_header.bin  4-byte frame header advertising
///                                  ~4 GiB, past the kMaxFrameBytes cap
///   service_frame/torn.bin         header promising more payload than
///                                  the stream carries
///
/// Usage: fuzz_seed_gen <corpus-root>   (writes <root>/{ehframe,elf,x86,
/// service_frame}/*.bin; existing files are overwritten)

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "ehframe/eh_builder.hpp"
#include "ehframe/eh_frame.hpp"
#include "ehframe/eh_frame_hdr.hpp"
#include "elf/elf_builder.hpp"
#include "elf/types.hpp"
#include "service/protocol.hpp"
#include "util/json.hpp"

namespace {

namespace fs = std::filesystem;
using fetch::eh::CfiOp;

void write_seed(const fs::path& root, const char* group, const char* name,
                const std::vector<std::uint8_t>& bytes) {
  const fs::path dir = root / group;
  fs::create_directories(dir);
  const fs::path path = dir / name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  std::printf("wrote %s (%zu bytes)\n", path.string().c_str(), bytes.size());
}

std::vector<std::uint8_t> from_string(const std::string& s) {
  return {s.begin(), s.end()};
}

/// 4-byte little-endian frame header + payload, as write_frame sends it.
std::vector<std::uint8_t> framed(std::uint32_t advertised,
                                 const std::string& payload) {
  std::vector<std::uint8_t> out = {
      static_cast<std::uint8_t>(advertised & 0xff),
      static_cast<std::uint8_t>((advertised >> 8) & 0xff),
      static_cast<std::uint8_t>((advertised >> 16) & 0xff),
      static_cast<std::uint8_t>((advertised >> 24) & 0xff),
  };
  out.insert(out.end(), payload.begin(), payload.end());
  return out;
}

void gen_ehframe(const fs::path& root) {
  constexpr std::uint64_t kEhFrameAddr = 0x402000;
  constexpr std::uint64_t kHdrAddr = 0x401000;

  fetch::eh::EhFrameBuilder builder;
  builder.add_fde(0x401000, 0x40,
                  {CfiOp::def_cfa_offset(16), CfiOp::offset(6, 2),
                   CfiOp::advance(4), CfiOp::def_cfa_register(6)});
  builder.add_fde(0x401040, 0x10, {});
  builder.set_personality(0x400800);
  builder.add_fde_with_lsda(0x401050, 0x80,
                            {CfiOp::remember(), CfiOp::advance(8),
                             CfiOp::restore_state()},
                            0x403000);
  const std::vector<std::uint8_t> eh_frame = builder.build(kEhFrameAddr);
  write_seed(root, "ehframe", "valid_eh_frame.bin", eh_frame);

  // Matching binary-search header, parsed from the section we just built.
  const auto parsed = fetch::eh::EhFrame::parse(eh_frame, kEhFrameAddr);
  write_seed(root, "ehframe", "valid_eh_frame_hdr.bin",
             fetch::eh::build_eh_frame_hdr(parsed, kEhFrameAddr, kHdrAddr));

  // Truncation mid-CIE: the length field survives, the body does not.
  std::vector<std::uint8_t> truncated(eh_frame.begin(),
                                      eh_frame.begin() + 11);
  write_seed(root, "ehframe", "truncated_cie.bin", truncated);

  // The empty section: a lone 4-byte zero terminator.
  write_seed(root, "ehframe", "zero_terminator.bin", {0, 0, 0, 0});

  // Regression: .eh_frame_hdr claiming 2^32-1 table entries. The parser
  // must bound fde_count by the bytes actually present instead of
  // allocating for the advertised count.
  const std::vector<std::uint8_t> lying = {
      0x01,                    // version
      0x1b,                    // eh_frame_ptr_enc = pcrel|sdata4
      0x03,                    // fde_count_enc = udata4
      0x3b,                    // table_enc = datarel|sdata4
      0x00, 0x10, 0x00, 0x00,  // eh_frame_ptr
      0xff, 0xff, 0xff, 0xff,  // fde_count = 4294967295
      0x00, 0x00, 0x00, 0x00,  // one lonely table entry: initial_location
      0x10, 0x00, 0x00, 0x00,  //                         fde_address
  };
  write_seed(root, "ehframe", "lying_fde_count.bin", lying);
}

void gen_elf(const fs::path& root) {
  // Prologue + ret, enough for the decoder to find real instructions.
  const std::vector<std::uint8_t> text = {0x55, 0x48, 0x89, 0xe5, 0x90,
                                          0x5d, 0xc3, 0xc3};
  fetch::elf::ElfBuilder builder;
  const std::uint16_t text_idx = builder.add_section(
      ".text", fetch::elf::kShtProgbits,
      fetch::elf::kShfAlloc | fetch::elf::kShfExecinstr, 0x401000, text);
  builder.add_symbol("f", 0x401000, 7, 0x12, text_idx);
  builder.add_symbol("g", 0x401007, 1, 0x12, text_idx);
  builder.set_entry(0x401000);
  const std::vector<std::uint8_t> image = builder.build();
  write_seed(root, "elf", "valid_tiny.bin", image);

  fetch::elf::ElfBuilder stripped;
  const std::uint16_t idx2 = stripped.add_section(
      ".text", fetch::elf::kShtProgbits,
      fetch::elf::kShfAlloc | fetch::elf::kShfExecinstr, 0x401000, text);
  stripped.emit_symtab(false);
  stripped.add_dynamic_symbol("exported", 0x401000, 7, 0x12, idx2);
  stripped.set_entry(0x401000);
  write_seed(root, "elf", "stripped_dynsym.bin", stripped.build());

  write_seed(root, "elf", "truncated_ehdr.bin",
             {image.begin(), image.begin() + 32});

  // Valid image whose e_shoff points past the end of the file.
  std::vector<std::uint8_t> bad_shoff = image;
  for (std::size_t i = 0; i < 8; ++i) {
    bad_shoff[0x28 + i] = 0xff;  // e_shoff at offset 0x28 in Elf64_Ehdr
  }
  write_seed(root, "elf", "bad_shoff.bin", bad_shoff);

  std::vector<std::uint8_t> magic_only(64, 0);
  magic_only[0] = 0x7f;
  magic_only[1] = 'E';
  magic_only[2] = 'L';
  magic_only[3] = 'F';
  magic_only[4] = 2;  // ELFCLASS64
  magic_only[5] = 1;  // little-endian
  write_seed(root, "elf", "magic_only.bin", magic_only);
}

void gen_x86(const fs::path& root) {
  // A realistic prologue/body/epilogue stream: push rbp; mov rbp,rsp;
  // sub rsp,0x20; mov eax,[rbp-4]; call rel32; jne rel8; leave; ret.
  write_seed(root, "x86", "straight_line.bin",
             {0x55, 0x48, 0x89, 0xe5, 0x48, 0x83, 0xec, 0x20, 0x8b,
              0x45, 0xfc, 0xe8, 0x10, 0x00, 0x00, 0x00, 0x75, 0x02,
              0xc9, 0xc3, 0x0f, 0x1f, 0x40, 0x00});

  // Legacy prefix soup in front of an add — exercises the 15-byte cap.
  write_seed(root, "x86", "prefix_soup.bin",
             {0x66, 0x67, 0xf0, 0xf2, 0xf3, 0x2e, 0x3e, 0x26, 0x64, 0x65,
              0x66, 0x67, 0xf0, 0xf2, 0x01, 0xc0});

  // VEX2, VEX3, EVEX, and the 0F38/0F3A escape maps.
  write_seed(root, "x86", "vex_escapes.bin",
             {0xc5, 0xf8, 0x77,                          // vzeroupper
              0xc4, 0xe2, 0x79, 0x18, 0x05, 0x00, 0x00, 0x00, 0x00,
              0x62, 0xf1, 0x7c, 0x48, 0x58, 0xc1,       // EVEX vaddps
              0x0f, 0x38, 0x00, 0xc1,                   // pshufb
              0x0f, 0x3a, 0x0f, 0xc1, 0x04});           // palignr

  // Opcodes that need a ModRM byte the stream does not carry.
  write_seed(root, "x86", "truncated_modrm.bin", {0xff});
  write_seed(root, "x86", "truncated_rex_mov.bin", {0x48, 0x8b});

  std::vector<std::uint8_t> all_bytes(256);
  for (std::size_t i = 0; i < all_bytes.size(); ++i) {
    all_bytes[i] = static_cast<std::uint8_t>(i);
  }
  write_seed(root, "x86", "all_bytes.bin", all_bytes);
}

void gen_service_frame(const fs::path& root) {
  using fetch::service::Op;
  using fetch::service::Request;

  const auto framed_request = [](const Request& request) {
    const std::string payload =
        fetch::service::request_json(request).dump();
    return framed(static_cast<std::uint32_t>(payload.size()), payload);
  };
  write_seed(root, "service_frame", "ping.bin",
             framed_request({Op::kPing, "", ""}));
  write_seed(root, "service_frame", "query.bin",
             framed_request({Op::kQuery, "/usr/bin/true", ""}));
  write_seed(root, "service_frame", "stats.bin",
             framed_request({Op::kStats, "", ""}));
  write_seed(root, "service_frame", "shutdown.bin",
             framed_request({Op::kShutdown, "", ""}));

  // Regression: header advertising ~4 GiB — must trip the kMaxFrameBytes
  // cap, not drive a 4 GiB allocation.
  write_seed(root, "service_frame", "oversize_header.bin",
             framed(0xffffffffu, "x"));

  // Header promising 100 payload bytes over a 10-byte stream.
  write_seed(root, "service_frame", "torn.bin", framed(100, "0123456789"));

  write_seed(root, "service_frame", "malformed_json.bin",
             framed(9, "{not json"));
  write_seed(root, "service_frame", "wrong_schema.bin",
             framed(38, R"({"schema":"fetch-service-v0","op":"x"})"));

  // A shaped-but-hostile analysis document for analysis_from_json.
  const std::string doc =
      R"({"schema":"fetch-analysis-v1","path":"/x","ok":true,)"
      R"("content_hash":"00000000deadbeef","functions":[)"
      R"({"addr":"0x401000","provenance":"fde"}],)"
      R"("counters":{"fde_starts":1,"pointer_starts":0,)"
      R"("merged_parts":0,"invalid_fde_starts":0}})";
  write_seed(root, "service_frame", "analysis_doc.bin",
             from_string(doc));
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <corpus-root>\n", argv[0]);
    return 2;
  }
  const fs::path root(argv[1]);
  gen_ehframe(root);
  gen_elf(root);
  gen_x86(root);
  gen_service_frame(root);
  return 0;
}
