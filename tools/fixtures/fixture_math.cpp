// Real-compiler fixture for the real-binary regression harness: built by
// the project's own toolchain (so it is genuine gcc/clang + linker output
// with crt code, PLT, and .eh_frame) and never stripped, so .symtab is the
// ground truth. `noinline` + volatile sinks keep the functions alive at
// -O3; the bodies are varied so the optimizer emits different frame
// shapes (leaf, spilling, looping, recursing).

#include <cstdint>
#include <cstdio>
#include <cstdlib>

#define KEEP __attribute__((noinline))

namespace {

volatile std::uint64_t sink;

KEEP std::uint64_t mix(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 29;
  return x;
}

KEEP std::uint64_t fib(std::uint64_t n) {
  return n < 2 ? n : fib(n - 1) + fib(n - 2);
}

KEEP std::uint64_t sum_squares(std::uint64_t n) {
  std::uint64_t total = 0;
  for (std::uint64_t i = 0; i < n; ++i) {
    total += i * i;
  }
  return total;
}

KEEP std::uint64_t gcd(std::uint64_t a, std::uint64_t b) {
  while (b != 0) {
    const std::uint64_t t = a % b;
    a = b;
    b = t;
  }
  return a;
}

KEEP std::uint64_t popcount_loop(std::uint64_t x) {
  std::uint64_t bits = 0;
  while (x != 0) {
    bits += x & 1;
    x >>= 1;
  }
  return bits;
}

KEEP std::uint64_t poly(std::uint64_t x) {
  return ((x * 3 + 7) * x + 11) * x + 13;
}

KEEP std::uint64_t dispatch(std::uint64_t op, std::uint64_t x) {
  switch (op & 7) {
    case 0:
      return mix(x);
    case 1:
      return fib(x % 20);
    case 2:
      return sum_squares(x % 1000);
    case 3:
      return gcd(x, 12345);
    case 4:
      return popcount_loop(x);
    case 5:
      return poly(x);
    default:
      return x;
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = argc > 1
                           ? std::strtoull(argv[1], nullptr, 10)
                           : 42;
  for (int i = 0; i < 64; ++i) {
    seed = dispatch(static_cast<std::uint64_t>(i), seed + 1);
    sink = seed;
  }
  std::printf("%llu\n", static_cast<unsigned long long>(sink));
  return 0;
}
