// Real-compiler fixture (see fixture_math.cpp): string/container-heavy
// code so the optimizer emits calls into libstdc++/libc (PLT entries,
// exception tables, cold paths) — a very different binary shape from the
// arithmetic fixture.

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#define KEEP __attribute__((noinline))

namespace {

KEEP std::string rotate(std::string text, std::size_t by) {
  if (text.empty()) {
    return text;
  }
  by %= text.size();
  std::rotate(text.begin(), text.begin() + static_cast<long>(by), text.end());
  return text;
}

KEEP std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == sep) {
      out.push_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

KEEP std::map<std::string, int> histogram(
    const std::vector<std::string>& words) {
  std::map<std::string, int> counts;
  for (const std::string& word : words) {
    ++counts[word];
  }
  return counts;
}

KEEP std::string join(const std::vector<std::string>& parts,
                      const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) {
      out += sep;
    }
    out += parts[i];
  }
  return out;
}

KEEP std::size_t checksum(const std::string& text) {
  std::size_t value = 1469598103934665603ULL;
  for (const char c : text) {
    value = (value ^ static_cast<unsigned char>(c)) * 1099511628211ULL;
  }
  return value;
}

}  // namespace

int main() {
  const std::string corpus = "the quick brown fox jumps over the lazy dog "
                             "the fox the dog";
  std::size_t total = 0;
  for (std::size_t shift = 0; shift < 16; ++shift) {
    const std::vector<std::string> words = split(rotate(corpus, shift), ' ');
    const auto counts = histogram(words);
    std::vector<std::string> keys;
    keys.reserve(counts.size());
    for (const auto& [word, count] : counts) {
      keys.push_back(word + ":" + std::to_string(count));
    }
    total ^= checksum(join(keys, ","));
  }
  std::printf("%zu\n", total);
  return 0;
}
