// Real-compiler fixture (see fixture_math.cpp): virtual dispatch, function
// pointers, and a jump-table-friendly interpreter loop — shapes that
// stress recursive disassembly and the pointer-detection stage on genuine
// compiler output.

#include <array>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <vector>

#define KEEP __attribute__((noinline))

namespace {

struct Node {
  virtual ~Node() = default;
  virtual std::int64_t eval() const = 0;
};

struct Leaf final : Node {
  explicit Leaf(std::int64_t v) : value(v) {}
  KEEP std::int64_t eval() const override { return value; }
  std::int64_t value;
};

struct Add final : Node {
  Add(std::unique_ptr<Node> l, std::unique_ptr<Node> r)
      : lhs(std::move(l)), rhs(std::move(r)) {}
  KEEP std::int64_t eval() const override { return lhs->eval() + rhs->eval(); }
  std::unique_ptr<Node> lhs, rhs;
};

struct Mul final : Node {
  Mul(std::unique_ptr<Node> l, std::unique_ptr<Node> r)
      : lhs(std::move(l)), rhs(std::move(r)) {}
  KEEP std::int64_t eval() const override { return lhs->eval() * rhs->eval(); }
  std::unique_ptr<Node> lhs, rhs;
};

KEEP std::unique_ptr<Node> build(int depth, std::int64_t seed) {
  if (depth == 0) {
    return std::make_unique<Leaf>(seed % 7 + 1);
  }
  auto left = build(depth - 1, seed * 3 + 1);
  auto right = build(depth - 1, seed * 5 + 2);
  if (seed % 2 == 0) {
    return std::make_unique<Add>(std::move(left), std::move(right));
  }
  return std::make_unique<Mul>(std::move(left), std::move(right));
}

using Op = std::int64_t (*)(std::int64_t, std::int64_t);

KEEP std::int64_t op_add(std::int64_t a, std::int64_t b) { return a + b; }
KEEP std::int64_t op_sub(std::int64_t a, std::int64_t b) { return a - b; }
KEEP std::int64_t op_xor(std::int64_t a, std::int64_t b) { return a ^ b; }
KEEP std::int64_t op_rot(std::int64_t a, std::int64_t b) {
  const auto ua = static_cast<std::uint64_t>(a);
  return static_cast<std::int64_t>((ua << (b & 63)) | (ua >> (64 - (b & 63))));
}

// A table of function pointers in .data.rel.ro — exactly the pattern the
// soundness-driven pointer scan (§IV-E) is meant to pick up.
constexpr std::array<Op, 4> kOps = {op_add, op_sub, op_xor, op_rot};

KEEP std::int64_t interpret(const std::vector<std::uint8_t>& program,
                            std::int64_t acc) {
  for (const std::uint8_t insn : program) {
    switch (insn & 0xc0) {
      case 0x00:
        acc = kOps[insn & 3](acc, insn >> 2);
        break;
      case 0x40:
        acc += insn & 0x3f;
        break;
      case 0x80:
        acc *= (insn & 0x3f) | 1;
        break;
      default:
        acc ^= insn;
        break;
    }
  }
  return acc;
}

}  // namespace

int main() {
  const std::unique_ptr<Node> tree = build(6, 17);
  std::vector<std::uint8_t> program;
  program.reserve(256);
  for (int i = 0; i < 256; ++i) {
    program.push_back(static_cast<std::uint8_t>(i * 37 + 11));
  }
  const std::int64_t value = interpret(program, tree->eval());
  std::printf("%lld\n", static_cast<long long>(value));
  return 0;
}
