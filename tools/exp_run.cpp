/// \file exp_run.cpp
/// Experiment-matrix runner: expands a checked-in fetch-exp-v1 spec
/// (`bench/experiments/*.json`) into its exact, ordered list of bench
/// invocations, runs them, aggregates the fetch-bench-v1 outputs into
/// the cross-commit trajectory report (BENCH_trajectory.json, appended
/// never rewritten), and optionally gates each run against its checked-in
/// baseline under the per-metric tolerance policy
/// (`bench/baselines/tolerances.json`).
///
///   exp_run --spec FILE [--bin-dir DIR] [--out-dir DIR] [--list]
///           [--trajectory FILE] [--commit ID]
///           [--baselines-dir DIR] [--tolerances FILE] [--check]
///           [--update-baselines] [--json PATH] [--markdown PATH]
///
///   --list              print the expansion (id + argv per cell) and the
///                       spec hash, run nothing, exit 0. This output is
///                       pinned by tests/test_exp_spec.cpp.
///   --out-dir DIR       per-invocation artifacts: <id>.json (the bench's
///                       fetch-bench-v1 report) and <id>.log (its stdout+
///                       stderr). Default: exp-out
///   --trajectory FILE   append this run's entry (keyed by --commit and
///                       the spec hash) to the trajectory document;
///                       created when missing, validated when present.
///   --check             gate: diff every run that names a baseline
///                       against <baselines-dir>/<baseline> under the
///                       tolerance policy.
///   --update-baselines  explicit baseline-refresh workflow: rewrite each
///                       named baseline file from this run's report and
///                       print the old → new diff for review (mutually
///                       exclusive with --check).
///
/// Exit codes: 0 ok · 1 gate regression · 2 usage/spec/bench failure ·
/// 3 baseline metric missing from a candidate (and nothing regressed).
/// The distinction keeps "someone renamed a metric" from hiding inside
/// "perf is fine" — CI fails either way, but the triage differs.

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <string_view>
#include <vector>

#include "eval/table.hpp"
#include "exp/spec.hpp"
#include "exp/tolerance.hpp"
#include "exp/trajectory.hpp"
#include "util/json.hpp"
#include "util/json_schema.hpp"

namespace {

using namespace fetch;
using util::json::Value;

struct Options {
  std::string spec_path;
  std::string bin_dir = ".";
  std::string out_dir = "exp-out";
  std::string trajectory_path;
  std::string commit = "local";
  std::string baselines_dir = "bench/baselines";
  std::string tolerances_path;
  std::string json_path;
  std::string markdown_path;
  bool list = false;
  bool check = false;
  bool update_baselines = false;
};

int usage() {
  std::cerr
      << "usage: exp_run --spec FILE [--bin-dir DIR] [--out-dir DIR]\n"
         "               [--list] [--trajectory FILE] [--commit ID]\n"
         "               [--baselines-dir DIR] [--tolerances FILE]\n"
         "               [--check] [--update-baselines]\n"
         "               [--json PATH] [--markdown PATH]\n";
  return 2;
}

/// POSIX-shell single quoting: safe to splice into a system() command.
std::string shell_quote(const std::string& s) {
  std::string out = "'";
  for (const char c : s) {
    if (c == '\'') {
      out += "'\\''";
    } else {
      out.push_back(c);
    }
  }
  out += "'";
  return out;
}

bool write_text_file(const std::string& path, const std::string& text,
                     std::string* error) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
  out.close();
  if (out.fail()) {
    *error = "cannot write " + path;
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    auto take = [&](std::string* out) {
      if (i + 1 >= argc) {
        return false;
      }
      *out = argv[++i];
      return true;
    };
    if (arg == "--spec") {
      if (!take(&opt.spec_path)) return usage();
    } else if (arg == "--bin-dir") {
      if (!take(&opt.bin_dir)) return usage();
    } else if (arg == "--out-dir") {
      if (!take(&opt.out_dir)) return usage();
    } else if (arg == "--trajectory") {
      if (!take(&opt.trajectory_path)) return usage();
    } else if (arg == "--commit") {
      if (!take(&opt.commit)) return usage();
    } else if (arg == "--baselines-dir") {
      if (!take(&opt.baselines_dir)) return usage();
    } else if (arg == "--tolerances") {
      if (!take(&opt.tolerances_path)) return usage();
    } else if (arg == "--json") {
      if (!take(&opt.json_path)) return usage();
    } else if (arg == "--markdown") {
      if (!take(&opt.markdown_path)) return usage();
    } else if (arg == "--list") {
      opt.list = true;
    } else if (arg == "--check") {
      opt.check = true;
    } else if (arg == "--update-baselines") {
      opt.update_baselines = true;
    } else {
      return usage();
    }
  }
  if (opt.spec_path.empty() || (opt.check && opt.update_baselines)) {
    return usage();
  }

  std::string error;
  auto spec = exp::ExpSpec::load(opt.spec_path, &error);
  if (!spec) {
    std::cerr << "error: " << error << "\n";
    return 2;
  }
  const std::vector<exp::Invocation> matrix = spec->expand();

  if (opt.list) {
    std::cout << "spec " << spec->name() << " hash " << spec->hash_hex()
              << " (" << matrix.size() << " invocations)\n";
    for (const exp::Invocation& inv : matrix) {
      std::cout << inv.render() << "\n";
    }
    return 0;
  }

  // Tolerance policy: explicit file, else the engine default (flat 3x).
  exp::TolerancePolicy policy = exp::TolerancePolicy::flat(3.0);
  std::string policy_source = "built-in flat 3x";
  if (!opt.tolerances_path.empty()) {
    auto loaded = exp::TolerancePolicy::load(opt.tolerances_path, &error);
    if (!loaded) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    policy = std::move(*loaded);
    policy_source = opt.tolerances_path;
  }

  std::error_code ec;
  std::filesystem::create_directories(opt.out_dir, ec);
  if (ec) {
    std::cerr << "error: cannot create --out-dir " << opt.out_dir << ": "
              << ec.message() << "\n";
    return 2;
  }
  const std::string cache_dir = opt.out_dir + "/corpus-cache";

  // --- Run every cell, in expansion order ----------------------------------
  std::cerr << "spec " << spec->name() << " hash " << spec->hash_hex()
            << ": running " << matrix.size() << " invocations\n";
  std::vector<Value> reports;
  reports.reserve(matrix.size());
  for (const exp::Invocation& inv : matrix) {
    const std::string json_path = opt.out_dir + "/" + inv.id + ".json";
    const std::string log_path = opt.out_dir + "/" + inv.id + ".log";
    std::string command = shell_quote(opt.bin_dir + "/" + inv.bench);
    for (const std::string& arg : inv.bench_args()) {
      command += " " + shell_quote(arg);
    }
    if (inv.cache) {
      command += " --cache-dir " + shell_quote(cache_dir);
    }
    command += " --json " + shell_quote(json_path);
    command += " > " + shell_quote(log_path) + " 2>&1";
    std::cerr << "run " << inv.id << ": " << inv.bench << "\n";
    const int rc = std::system(command.c_str());
    if (rc != 0) {
      std::cerr << "error: " << inv.id << " failed (see " << log_path
                << ")\n";
      return 2;
    }
    auto report = util::json::load_file(json_path, &error);
    if (!report ||
        !util::json::expect_schema(*report, "fetch-bench-v1", &error,
                                   json_path)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    reports.push_back(std::move(*report));
  }

  // --- Trajectory append ---------------------------------------------------
  if (!opt.trajectory_path.empty()) {
    auto doc = exp::load_or_init_trajectory(opt.trajectory_path, &error);
    if (!doc) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    Value entry = exp::make_trajectory_entry(opt.commit, spec->name(),
                                             spec->hash_hex());
    Value runs = Value::array();
    for (std::size_t i = 0; i < matrix.size(); ++i) {
      const exp::Invocation& inv = matrix[i];
      Value run = Value::object();
      run.set("id", Value(inv.id));
      run.set("bench", Value(inv.bench));
      run.set("scale", Value(inv.scale));
      run.set("jobs", Value::number(static_cast<std::uint64_t>(inv.jobs)));
      run.set("cache", Value(inv.cache));
      run.set("predecode", Value(inv.predecode));
      if (const Value* results = reports[i].get("results")) {
        run.set("results", *results);
      }
      runs.add(std::move(run));
    }
    entry.set("runs", std::move(runs));
    exp::append_trajectory_entry(&*doc, std::move(entry));
    if (!exp::write_trajectory(opt.trajectory_path, *doc, &error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    std::cerr << "trajectory: appended entry (commit " << opt.commit
              << ", spec_hash " << spec->hash_hex() << ") to "
              << opt.trajectory_path << "\n";
  }

  // --- Baseline refresh (explicit, reviewable) -----------------------------
  if (opt.update_baselines) {
    std::vector<std::string> written;
    for (std::size_t i = 0; i < matrix.size(); ++i) {
      const exp::Invocation& inv = matrix[i];
      if (inv.baseline.empty()) {
        continue;
      }
      const std::string path = opt.baselines_dir + "/" + inv.baseline;
      bool already = false;
      for (const std::string& w : written) {
        already = already || w == inv.baseline;
      }
      if (already) {
        // First matching cell wins: the expansion order is deterministic,
        // so which cell feeds a shared baseline file never silently moves.
        std::cerr << "update-baselines: " << inv.id << " skipped ("
                  << inv.baseline << " already written this run)\n";
        continue;
      }
      Value old_doc = Value::object();
      if (auto existing = util::json::load_file(path, &error)) {
        old_doc = std::move(*existing);
      }
      const exp::DiffReport diff =
          exp::diff_reports(old_doc, reports[i], policy);
      std::cout << "=== baseline update: " << inv.baseline << " (from "
                << inv.id << ") ===\n";
      eval::TextTable table({"metric", "old", "new", "ratio", "status"});
      for (const exp::MetricVerdict& v : diff.rows) {
        table.add_row({v.name,
                       v.baseline_text.empty() ? "-" : v.baseline_text,
                       v.current_text.empty() ? "-" : v.current_text,
                       v.ratio == 0.0 ? "-" : eval::fmt(v.ratio, 2),
                       std::string(exp::status_name(v.status))});
      }
      table.print(std::cout);
      std::cout << "\n";
      if (!write_text_file(path, reports[i].dump() + "\n", &error)) {
        std::cerr << "error: " << error << "\n";
        return 2;
      }
      written.push_back(inv.baseline);
    }
    std::cout << "updated " << written.size()
              << " baseline file(s) under " << opt.baselines_dir
              << " — review the diffs above before committing\n";
    return 0;
  }

  // --- Gate ----------------------------------------------------------------
  bool any_regressed = false;
  bool any_missing = false;
  Value verdicts = Value::object();
  verdicts.set("schema", Value("fetch-exp-verdict-v1"));
  verdicts.set("spec", Value(spec->name()));
  verdicts.set("spec_hash", Value(spec->hash_hex()));
  verdicts.set("commit", Value(opt.commit));
  verdicts.set("policy", Value(policy_source));
  Value run_verdicts = Value::array();
  std::string markdown;
  if (opt.check) {
    for (std::size_t i = 0; i < matrix.size(); ++i) {
      const exp::Invocation& inv = matrix[i];
      if (inv.baseline.empty()) {
        continue;
      }
      const std::string path = opt.baselines_dir + "/" + inv.baseline;
      auto baseline = util::json::load_file(path, &error);
      if (!baseline ||
          !util::json::expect_schema(*baseline, "fetch-bench-v1", &error,
                                     path)) {
        std::cerr << "error: " << error << "\n";
        return 2;
      }
      const exp::DiffReport diff =
          exp::diff_reports(*baseline, reports[i], policy);
      any_regressed = any_regressed || diff.gate_failed();
      any_missing = any_missing || diff.any_missing();

      std::cout << "=== gate " << inv.id << " vs " << inv.baseline << ": "
                << diff.verdict() << " ===\n";
      eval::TextTable table({"metric", "baseline", "current", "ratio",
                             "status"});
      for (const exp::MetricVerdict& v : diff.rows) {
        table.add_row({v.name,
                       v.baseline_text.empty() ? "-" : v.baseline_text,
                       v.current_text.empty() ? "-" : v.current_text,
                       v.ratio == 0.0 ? "-" : eval::fmt(v.ratio, 2),
                       std::string(exp::status_name(v.status))});
      }
      table.print(std::cout);
      std::cout << "\n";

      Value rv = exp::verdict_json(diff, path, opt.out_dir + "/" + inv.id +
                                                   ".json",
                                   policy_source);
      rv.set("id", Value(inv.id));
      run_verdicts.add(std::move(rv));
      markdown += exp::verdict_markdown(diff, "gate " + inv.id + " vs " +
                                                  inv.baseline);
      markdown += "\n";
    }
  }
  verdicts.set("runs", std::move(run_verdicts));
  verdicts.set("verdict",
               Value(any_regressed
                         ? "regressed"
                         : (any_missing ? "missing-metrics" : "ok")));
  if (!opt.json_path.empty()) {
    if (!write_text_file(opt.json_path, verdicts.dump() + "\n", &error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
  }
  if (!opt.markdown_path.empty()) {
    if (markdown.empty()) {
      markdown = "### experiment spec " + spec->name() +
                 " — no gated runs\n";
    }
    if (!write_text_file(opt.markdown_path, markdown, &error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
  }
  if (opt.check) {
    if (any_regressed) {
      std::cout << "gate: REGRESSED — see the per-metric tables above; if "
                   "the movement is intended, refresh with exp_run "
                   "--update-baselines and commit the reviewed diff\n";
      return 1;
    }
    if (any_missing) {
      std::cout << "gate: baseline metrics missing from a candidate report "
                   "— a metric was renamed or dropped without a baseline "
                   "update\n";
      return 3;
    }
    std::cout << "gate: ok\n";
  }
  return 0;
}
