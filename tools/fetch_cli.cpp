/// \file fetch_cli.cpp
/// Command-line front end for the library:
///
///   fetch-cli [opts] detect <elf>   detect function starts (full pipeline)
///   fetch-cli [opts] fde <elf>      list raw FDE PC Begin/Range entries
///   fetch-cli [opts] unwind <elf> <pc>  unwind info (CFA rule, stack
///                                   height) at pc
///   fetch-cli [opts] compare <elf>  run every strategy ladder step +
///                                   tools, concurrently on N workers
///   fetch-cli [opts] audit <elf>    CFI-policy gadget exposure of raw
///                                   FDE starts vs repaired starts
///   fetch-cli [opts] corpus [self-built|wild]
///                                   materialize the synthetic corpus
///                                   (cache-aware) and print its summary
///   fetch-cli [opts] batch <elf>... evaluate many ELFs concurrently
///                                   against their own .symtab/.dynsym
///                                   ground truth (per-file + aggregate
///                                   precision/recall/F1); unreadable or
///                                   malformed inputs become error rows,
///                                   the batch keeps going; repeated
///                                   inputs are deduplicated
///   fetch-cli [opts] serve          run the resident analysis daemon
///                                   (fetch-service-v1 over a Unix
///                                   socket, content-addressed LRU
///                                   result cache)
///   fetch-cli [opts] query <elf>... analyze via a running daemon; output
///                                   is byte-identical to `detect`
///   fetch-cli [opts] shutdown       stop a running daemon gracefully
///
/// Options: --jobs N (default: FETCH_JOBS env, else hardware concurrency),
/// --scale smoke|default|full (corpus population; default "default"),
/// --cache-dir DIR (corpus cache root; default: FETCH_CACHE_DIR env,
/// unset = no caching).
///
/// Batch-only options: --from-file LIST (newline-separated paths, `#`
/// comments; repeatable), --dir DIR (every ELF-magic regular file in DIR,
/// sorted; repeatable), --json PATH (write a `fetch-batch-v1` document),
/// --csv PATH, --truth auto|dynsym|ehframe|sidecar (ground-truth source;
/// "sidecar" reads `<path>.truth.json` captured by tools/strip_tool).
/// Batch output is byte-identical for any --jobs value.
/// Repeated inputs (positionally or via --from-file/--dir) are scored
/// once; a note about dropped duplicates goes to stderr.
///
/// Service options: --socket PATH (default: FETCH_SOCKET env, else
/// /tmp/fetch-serve.<uid>.sock) for serve/query/shutdown.
/// Serve-only: --cache-capacity N (result-cache entries, default 256),
/// --max-connections N, --queue-depth N, --idle-timeout-ms N,
/// --write-stall-ms N, --slow-query-ms N (warn-log queries at or over
/// the threshold; 0 = off), --daemonize, --pidfile PATH.
/// Client-only (query/shutdown): --retries N (connect retry with
/// jittered exponential backoff), --timeout MS (response deadline),
/// --op ping|stats|metrics|query (query), --format FORMAT (stats:
/// table|json; metrics: json|prom), --trace ID (query: send a trace id,
/// echo the daemon's per-stage timings on stderr). Exit codes: 0 ok,
/// 1 error, 2 usage, 3 daemon unreachable or timed out, 4 daemon
/// overloaded.
///
/// Observability (any command): --log-level trace|debug|info|warn|error|
/// off (default: FETCH_LOG env, else info; human-readable lines on
/// stderr — never stdout), --log-file PATH (JSON-lines event sink).
/// detect/batch also take --metrics-json PATH (dump the process's
/// fetch-metrics-v1 counters/histograms after the run).

#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iomanip>
#include <iostream>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "baselines/tools.hpp"
#include "core/detector.hpp"
#include "disasm/code_view.hpp"
#include "ehframe/cfi_eval.hpp"
#include "ehframe/eh_frame.hpp"
#include "elf/elf_file.hpp"
#include "eval/batch.hpp"
#include "eval/gadget.hpp"
#include "eval/runner.hpp"
#include "eval/session.hpp"
#include "eval/table.hpp"
#include "obs/log.hpp"
#include "obs/metrics.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "synth/corpus_store.hpp"
#include "util/fs.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace fetch;

/// Renders one analysis exactly the way `detect` always has: the
/// start/provenance table on stdout, the pipeline summary on stderr.
/// `query` renders through the same function, which is what makes served
/// output byte-identical to the one-shot path.
int render_detection(const eval::FileAnalysis& analysis) {
  if (!analysis.row.ok) {
    std::cerr << "error: " << analysis.row.error << "\n";
    return 1;
  }
  std::cout << "# start            provenance\n";
  for (const auto& [addr, provenance] : analysis.functions) {
    std::cout << "0x" << std::hex << std::setw(12) << std::setfill('0')
              << addr << std::dec << "   " << provenance << "\n";
  }
  std::cerr << analysis.functions.size() << " function starts ("
            << analysis.fde_starts << " from FDEs, "
            << analysis.pointer_starts << " from pointers, "
            << analysis.merged_parts << " parts merged, "
            << analysis.invalid_fde_starts
            << " invalid FDE starts removed)\n";
  return 0;
}

int cmd_detect(const std::string& path) {
  const eval::AnalysisSession session;
  return render_detection(session.analyze_file(path));
}

int cmd_fde(const elf::ElfFile& elf) {
  const auto eh = eh::EhFrame::from_elf(elf);
  if (!eh) {
    std::cerr << "no .eh_frame section\n";
    return 1;
  }
  std::cout << "# pc_begin         pc_range  complete_stack_height\n";
  for (const eh::Fde& fde : eh->fdes()) {
    const auto table = eh::evaluate_cfi(eh->cie_for(fde), fde);
    std::cout << "0x" << std::hex << std::setw(12) << std::setfill('0')
              << fde.pc_begin << "   0x" << std::setw(6) << fde.pc_range
              << std::dec << "   "
              << (table && table->complete_stack_height() ? "yes" : "no")
              << "\n";
  }
  std::cerr << eh->fdes().size() << " FDEs, " << eh->cies().size()
            << " CIEs\n";
  return 0;
}

int cmd_unwind(const elf::ElfFile& elf, std::uint64_t pc) {
  const auto eh = eh::EhFrame::from_elf(elf);
  if (!eh) {
    std::cerr << "no .eh_frame section\n";
    return 1;
  }
  const eh::Fde* fde = eh->fde_covering(pc);
  if (fde == nullptr) {
    std::cerr << "no FDE covers 0x" << std::hex << pc << "\n";
    return 1;
  }
  std::cout << "FDE [0x" << std::hex << fde->pc_begin << ", 0x"
            << fde->pc_end() << ")\n";
  const auto table = eh::evaluate_cfi(eh->cie_for(*fde), *fde);
  if (!table) {
    std::cerr << "CFI program malformed\n";
    return 1;
  }
  const eh::CfiRow* row = table->row_at(pc);
  if (row == nullptr) {
    std::cerr << "no unwind row at 0x" << std::hex << pc << "\n";
    return 1;
  }
  std::cout << "CFA: ";
  if (row->cfa.kind == eh::CfaRule::Kind::kRegOffset) {
    std::cout << "r" << std::dec << row->cfa.reg << " + " << row->cfa.offset;
  } else {
    std::cout << "<expression>";
  }
  const auto height = table->stack_height_at(pc);
  if (height) {
    std::cout << "   stack height: " << *height;
  }
  std::cout << "\nsaved registers:";
  for (const auto& [reg, rule] : row->regs) {
    if (rule.kind == eh::RegRule::Kind::kOffsetFromCfa) {
      std::cout << "  r" << reg << "@cfa" << rule.offset;
    }
  }
  std::cout << "\n";
  return 0;
}

int cmd_compare(const elf::ElfFile& elf, std::size_t jobs) {
  core::FunctionDetector detector(elf);

  core::DetectorOptions fde_only;
  fde_only.recursive = false;
  fde_only.pointer_detection = false;
  fde_only.fix_fde_errors = false;
  fde_only.use_entry_point = false;

  core::DetectorOptions rec;
  rec.pointer_detection = false;
  rec.fix_fde_errors = false;

  core::DetectorOptions xref;
  xref.fix_fde_errors = false;

  // All ladder steps and tool emulations run concurrently; the detector's
  // decode cache is shared across the FETCH rows. Rows print in the fixed
  // order below regardless of completion order.
  struct Row {
    std::string name;
    std::function<std::size_t()> run;
  };
  std::vector<Row> rows = {
      {"FDE", [&] { return detector.run(fde_only).functions.size(); }},
      {"FDE+Rec", [&] { return detector.run(rec).functions.size(); }},
      {"FDE+Rec+Xref", [&] { return detector.run(xref).functions.size(); }},
      {"FETCH (full)", [&] { return detector.run({}).functions.size(); }},
  };
  for (const baselines::ToolSpec& tool : baselines::conventional_tools()) {
    rows.push_back({tool.name, [&elf, run = tool.run] {
                      return run(elf).size();
                    }});
  }
  rows.push_back(
      {"GHIDRA-like", [&elf] { return baselines::ghidra_like(elf, {}).size(); }});
  rows.push_back(
      {"ANGR-like", [&elf] { return baselines::angr_like(elf, {}).size(); }});

  std::vector<std::size_t> counts(rows.size());
  util::parallel_for(jobs, rows.size(),
                     [&](std::size_t i) { counts[i] = rows[i].run(); });

  eval::TextTable table({"strategy", "starts"});
  for (std::size_t i = 0; i < rows.size(); ++i) {
    table.add_row({rows[i].name, std::to_string(counts[i])});
  }
  table.print(std::cout);
  return 0;
}

int cmd_audit(const elf::ElfFile& elf) {
  core::FunctionDetector detector(elf);
  core::DetectorOptions raw;
  raw.fix_fde_errors = false;
  const auto before = detector.run(raw);
  const auto after = detector.run({});

  // False-start candidates = starts Algorithm 1 removed.
  std::set<std::uint64_t> removed;
  for (const auto& [part, parent] : after.merged_parts) {
    removed.insert(part);
  }
  for (const std::uint64_t s : after.invalid_fde_starts) {
    removed.insert(s);
  }
  const disasm::CodeView code(elf);
  const std::size_t gadgets = eval::count_gadgets_at(code, removed);

  std::cout << "CFI policy audit:\n";
  std::cout << "  targets before repair: " << before.functions.size()
            << "\n";
  std::cout << "  targets after repair:  " << after.functions.size() << "\n";
  std::cout << "  false targets removed: " << removed.size() << "\n";
  std::cout << "  ROP/JOP gadgets no longer whitelisted: " << gadgets
            << "\n";
  return 0;
}

/// Materializes a corpus through the load-or-generate path and prints a
/// summary: population, spec hash (the cache key), sizes, provenance.
int cmd_corpus(const std::string& which, const eval::CorpusOptions& options) {
  if (which != "self-built" && which != "wild") {
    std::cerr << "unknown corpus \"" << which
              << "\" (expected self-built or wild)\n";
    return 2;
  }
  const eval::Corpus corpus = which == "wild"
                                  ? eval::Corpus::wild(options)
                                  : eval::Corpus::self_built(options);
  std::size_t image_bytes = 0;
  std::size_t functions = 0;
  for (const eval::CorpusEntry& entry : corpus.entries()) {
    image_bytes += entry.bin.image.size();
    functions += entry.bin.truth.starts.size();
  }
  std::cout << "corpus:     " << which << "\n";
  std::cout << "scale:      " << synth::scale_name(options.scale) << "\n";
  std::cout << "spec hash:  " << std::hex << std::setw(16)
            << std::setfill('0') << corpus.spec_hash() << std::dec << "\n";
  std::cout << "entries:    " << corpus.size() << "\n";
  std::cout << "functions:  " << functions << "\n";
  std::cout << "image size: " << image_bytes << " bytes\n";
  std::cout << "source:     "
            << (corpus.from_cache() ? "cache" : "generated") << "\n";
  if (!options.cache_dir.empty()) {
    const synth::CorpusStore store(options.cache_dir);
    std::cout << "cache file: "
              << store.corpus_path(corpus.spec_hash()).string() << "\n";
  }
  return 0;
}

/// Service front-end state collected by the argument loop.
struct ServiceArgs {
  static constexpr std::uint64_t kUnsetMs = ~std::uint64_t{0};

  std::string socket;           ///< --socket PATH ("" = default path)
  std::size_t cache_capacity = 0;  ///< --cache-capacity N (0 = default)

  // serve-only knobs.
  std::size_t max_connections = 0;        ///< --max-connections N
  std::size_t queue_depth = 0;            ///< --queue-depth N
  std::uint64_t idle_timeout_ms = kUnsetMs;   ///< --idle-timeout-ms N
  std::uint64_t write_stall_ms = kUnsetMs;    ///< --write-stall-ms N
  std::uint64_t slow_query_ms = kUnsetMs;     ///< --slow-query-ms N
  bool daemonize = false;                 ///< --daemonize
  std::string pidfile;                    ///< --pidfile PATH

  // query/shutdown-only knobs.
  std::size_t retries = 0;       ///< --retries N (connect attempts - 1)
  std::uint64_t timeout_ms = 0;  ///< --timeout MS (response deadline)
  std::string op;      ///< --op ping|stats|metrics|query (query only)
  std::string format;  ///< --format (stats: table|json; metrics: json|prom)
  std::string trace;   ///< --trace ID (query only)

  [[nodiscard]] bool any() const {
    return !socket.empty() || cache_capacity != 0 || serve_only() ||
           client_only();
  }
  [[nodiscard]] bool serve_only() const {
    return max_connections != 0 || queue_depth != 0 ||
           idle_timeout_ms != kUnsetMs || write_stall_ms != kUnsetMs ||
           slow_query_ms != kUnsetMs || daemonize || !pidfile.empty();
  }
  [[nodiscard]] bool client_only() const {
    return retries != 0 || timeout_ms != 0 || !op.empty() ||
           !format.empty() || !trace.empty();
  }
};

/// Exit codes for the service client commands, distinct so scripts can
/// tell a daemon that is *down* from one that is *shedding load*:
/// 0 ok, 1 error, 2 usage, 3 unreachable/timed out, 4 overloaded.
constexpr int kExitUnreachable = 3;
constexpr int kExitOverloaded = 4;

/// Classifies a failed client call into an exit code. \p client may be
/// null (connect never succeeded).
int client_exit_code(const service::ServiceClient* client,
                     const std::string& error) {
  if (client != nullptr &&
      client->last_error_code() == service::kErrOverloaded) {
    return kExitOverloaded;
  }
  if (client == nullptr || error == "receive timed out" ||
      error == "server closed the connection") {
    return kExitUnreachable;
  }
  return 1;
}

/// Classic double-fork daemonization: detach from the controlling
/// terminal and session, then point stdio at /dev/null. Called after
/// the listener is bound (bind errors still reach the caller's stderr)
/// and before any thread is spawned (threads do not survive fork).
bool daemonize_self(std::string* error) {
  pid_t pid = ::fork();
  if (pid < 0) {
    *error = std::string("fork: ") + std::strerror(errno);
    return false;
  }
  if (pid > 0) {
    ::_exit(0);  // original caller returns immediately
  }
  if (::setsid() < 0) {
    *error = std::string("setsid: ") + std::strerror(errno);
    return false;
  }
  pid = ::fork();  // second fork: never reacquire a controlling terminal
  if (pid < 0) {
    *error = std::string("fork: ") + std::strerror(errno);
    return false;
  }
  if (pid > 0) {
    ::_exit(0);
  }
  const int devnull = ::open("/dev/null", O_RDWR);
  if (devnull >= 0) {
    ::dup2(devnull, STDIN_FILENO);
    ::dup2(devnull, STDOUT_FILENO);
    ::dup2(devnull, STDERR_FILENO);
    if (devnull > STDERR_FILENO) {
      ::close(devnull);
    }
  }
  return true;
}

/// Signal → clean daemon shutdown. The handler only stores the signal
/// number (async-signal-safe); a watcher thread notices and calls
/// ServiceServer::stop() from normal context.
std::atomic<int> g_signal{0};

extern "C" void record_signal(int sig) {
  g_signal.store(sig, std::memory_order_relaxed);
}

int cmd_serve(std::size_t jobs, const ServiceArgs& service) {
  service::ServerOptions options;
  options.socket_path = service.socket;  // "" → default_socket_path()
  options.workers = jobs;
  if (service.cache_capacity != 0) {
    options.cache_capacity = service.cache_capacity;
  }
  if (service.max_connections != 0) {
    options.max_connections = service.max_connections;
  }
  if (service.queue_depth != 0) {
    options.queue_depth = service.queue_depth;
  }
  if (service.idle_timeout_ms != ServiceArgs::kUnsetMs) {
    options.idle_timeout_ms = service.idle_timeout_ms;
  }
  if (service.write_stall_ms != ServiceArgs::kUnsetMs) {
    options.write_stall_ms = service.write_stall_ms;
  }
  if (service.slow_query_ms != ServiceArgs::kUnsetMs) {
    options.slow_query_ms = service.slow_query_ms;
  }
  service::ServiceServer server(options);
  std::string error;
  if (!server.start(&error)) {
    obs::log_error("serve", "cannot start", {{"error", error}});
    return 1;
  }
  obs::log_info(
      "serve", "listening",
      {{"socket", server.socket_path()},
       {"cache_capacity", std::to_string(server.options().cache_capacity)},
       {"max_connections",
        std::to_string(server.options().max_connections)}});
  if (service.daemonize && !daemonize_self(&error)) {
    obs::log_error("serve", "cannot daemonize", {{"error", error}});
    return 1;
  }
  if (!service.pidfile.empty()) {
    std::ofstream out(service.pidfile, std::ios::trunc);
    out << ::getpid() << "\n";
    if (!out) {
      obs::log_error("serve", "cannot write pidfile",
                     {{"path", service.pidfile}});
      return 1;
    }
  }
  std::signal(SIGINT, record_signal);
  std::signal(SIGTERM, record_signal);
  std::thread watcher([&server] {
    while (!server.stopping()) {
      if (g_signal.load(std::memory_order_relaxed) != 0) {
        server.stop();
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });
  server.run();
  watcher.join();
  if (!service.pidfile.empty()) {
    std::error_code ec;
    std::filesystem::remove(service.pidfile, ec);
  }
  const util::LruStats stats = server.cache_stats();
  const service::ServerStats robustness = server.server_stats();
  obs::log_info(
      "serve", "stopped",
      {{"hits", std::to_string(stats.hits)},
       {"misses", std::to_string(stats.misses)},
       {"joined", std::to_string(stats.joined)},
       {"evictions", std::to_string(stats.evictions)},
       {"shed", std::to_string(robustness.queries_shed)},
       {"rejected", std::to_string(robustness.rejected_connections)}});
  return 0;
}

service::ClientOptions client_options(const ServiceArgs& service) {
  service::ClientOptions options;
  options.retries = service.retries;
  options.timeout_ms = service.timeout_ms;
  return options;
}

/// `query --op stats`: dump the daemon's cache + robustness counters,
/// one `key: value` line each (the nested "server" object is flattened
/// with a `server.` prefix).
int render_stats(const util::json::Value& stats) {
  for (const auto& [key, value] : stats.members()) {
    if (value.is_object()) {
      for (const auto& [sub_key, sub_value] : value.members()) {
        std::cout << key << "." << sub_key << ": " << sub_value.dump()
                  << "\n";
      }
      continue;
    }
    std::cout << key << ": " << value.dump() << "\n";
  }
  return 0;
}

/// `query --op stats --format table`: the same flattened keys as the
/// default rendering, aligned in a two-column table.
int render_stats_table(const util::json::Value& stats) {
  eval::TextTable table({"metric", "value"});
  for (const auto& [key, value] : stats.members()) {
    if (value.is_object()) {
      for (const auto& [sub_key, sub_value] : value.members()) {
        table.add_row({key + "." + sub_key, sub_value.dump()});
      }
      continue;
    }
    table.add_row({key, value.dump()});
  }
  table.print(std::cout);
  return 0;
}

int cmd_query(const std::vector<const char*>& args,
              const ServiceArgs& service) {
  std::string error;
  auto client = service::ServiceClient::connect(service.socket, &error,
                                                client_options(service));
  if (!client) {
    std::cerr << "error: " << error << "\n";
    return kExitUnreachable;
  }
  if (service.op == "ping") {
    if (!client->ping(&error)) {
      std::cerr << "error: " << error << "\n";
      return client_exit_code(&*client, error);
    }
    std::cout << "ok\n";
    return 0;
  }
  if (service.op == "stats") {
    const auto stats = client->stats(&error);
    if (!stats) {
      std::cerr << "error: " << error << "\n";
      return client_exit_code(&*client, error);
    }
    if (service.format == "json") {
      std::cout << stats->dump() << "\n";
      return 0;
    }
    if (service.format == "table") {
      return render_stats_table(*stats);
    }
    return render_stats(*stats);
  }
  if (service.op == "metrics") {
    const auto metrics = client->metrics(&error);
    if (!metrics) {
      std::cerr << "error: " << error << "\n";
      return client_exit_code(&*client, error);
    }
    if (service.format == "prom") {
      // Round-trip through the typed snapshot: a daemon whose metrics
      // document does not parse as fetch-metrics-v1 is a bug worth a
      // loud error, not garbled exposition output.
      const auto snapshot = obs::Snapshot::from_json(*metrics, &error);
      if (!snapshot) {
        std::cerr << "error: " << error << "\n";
        return 1;
      }
      std::cout << obs::prometheus_text(*snapshot);
      return 0;
    }
    std::cout << metrics->dump() << "\n";
    return 0;
  }
  int rc = 0;
  for (std::size_t i = 1; i < args.size(); ++i) {
    // The server resolves paths against ITS working directory, so send
    // absolute paths: `fetch-cli query ./a.out` must mean the caller's
    // file.
    const std::string spelling = args[i];
    std::error_code ec;
    const std::filesystem::path abs = std::filesystem::absolute(spelling, ec);
    const std::string sent = ec ? spelling : abs.string();
    auto result = client->query(sent, &error, service.trace);
    if (!result) {
      std::cerr << "error: " << error << "\n";
      return client_exit_code(&*client, error);
    }
    if (!service.trace.empty()) {
      // Opt-in (--trace): stage timings on stderr, so default query
      // output stays byte-identical to one-shot `detect`.
      std::cerr << "trace " << result->trace << ": cache " << result->cache;
      for (const util::json::Value& stage : result->stages.items()) {
        const util::json::Value* name = stage.get("stage");
        const util::json::Value* us = stage.get("us");
        if (name != nullptr && us != nullptr) {
          std::cerr << " " << name->text() << "="
                    << static_cast<std::uint64_t>(us->as_double()) << "us";
        }
      }
      std::cerr << "\n";
    }
    // Error messages name the absolutized path; restore the caller's
    // spelling so failures too are byte-identical to one-shot `detect`.
    if (!result->analysis.row.ok && sent != spelling) {
      std::string& message = result->analysis.row.error;
      const std::size_t at = message.find(sent);
      if (at != std::string::npos) {
        message.replace(at, sent.size(), spelling);
      }
    }
    rc = std::max(rc, render_detection(result->analysis));
  }
  return rc;
}

int cmd_shutdown(const ServiceArgs& service) {
  std::string error;
  auto client = service::ServiceClient::connect(service.socket, &error,
                                                client_options(service));
  if (!client) {
    std::cerr << "error: " << error << "\n";
    return kExitUnreachable;
  }
  if (!client->shutdown_server(&error)) {
    std::cerr << "error: " << error << "\n";
    return client_exit_code(&*client, error);
  }
  obs::log_info("serve", "shutdown acknowledged");
  return 0;
}

/// Batch front-end state collected by the argument loop.
struct BatchArgs {
  std::vector<std::string> from_files;  ///< --from-file LIST (repeatable)
  std::vector<std::string> dirs;        ///< --dir DIR (repeatable)
  std::string json_path;                ///< --json PATH
  std::string csv_path;                 ///< --csv PATH
  /// --truth MODE: ground-truth source rows are scored against.
  eval::TruthMode truth = eval::TruthMode::kAuto;
  bool truth_set = false;

  [[nodiscard]] bool any() const {
    return !from_files.empty() || !dirs.empty() || !json_path.empty() ||
           !csv_path.empty() || truth_set;
  }
};

/// Writes \p text to \p path, failing loudly (same contract as the bench
/// harness's write_json_report).
bool write_file_or_complain(const std::string& path, const std::string& text,
                            const char* what) {
  std::ofstream out(path, std::ios::trunc);
  out << text;
  out.close();  // flush now so buffered write errors are observable
  if (out.fail()) {
    std::cerr << "error: cannot write " << what << " file: " << path << "\n";
    return false;
  }
  return true;
}

int cmd_batch(const std::vector<const char*>& args, const BatchArgs& batch,
              std::size_t jobs) {
  // Input order is deliberate and stable: positional paths first, then
  // each --from-file list, then each --dir expansion — the row order of
  // every report.
  std::vector<std::string> paths;
  for (std::size_t i = 1; i < args.size(); ++i) {
    paths.emplace_back(args[i]);
  }
  std::string error;
  for (const std::string& list : batch.from_files) {
    if (!eval::read_path_list(list, &paths, &error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
  }
  for (const std::string& dir : batch.dirs) {
    if (!eval::expand_directory(dir, &paths, &error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
  }
  if (paths.empty()) {
    std::cerr << "error: batch needs at least one input "
                 "(paths, --from-file, or --dir)\n";
    return 2;
  }

  // The same file reachable twice (positionally and via --dir, or through
  // a symlink) must be scored once or every aggregate double-counts it.
  // The note goes to stderr so stdout stays byte-comparable.
  const std::size_t duplicates = eval::dedupe_paths(&paths);
  if (duplicates != 0) {
    std::cerr << "note: skipped " << duplicates
              << " duplicate input path(s)\n";
  }

  eval::BatchOptions options;
  options.jobs = jobs;
  options.truth = batch.truth;
  const eval::BatchReport report = eval::run_batch(paths, options);
  report.print(std::cout);
  if (!batch.json_path.empty() &&
      !write_file_or_complain(batch.json_path, report.json().dump() + "\n",
                              "--json")) {
    return 2;
  }
  if (!batch.csv_path.empty() &&
      !write_file_or_complain(batch.csv_path, report.csv(), "--csv")) {
    return 2;
  }
  // Per-file failures are rows, not fatal — but a batch where *nothing*
  // could be evaluated is an error for scripting purposes.
  return report.error_count() == report.rows().size() ? 1 : 0;
}

/// Dumps the process-wide metrics registry when --metrics-json was
/// given, preserving the command's exit code unless the dump fails.
int finish_with_metrics(const std::string& path, int rc) {
  if (path.empty()) {
    return rc;
  }
  std::string error;
  if (!obs::write_global_metrics_json(path, &error)) {
    std::cerr << "error: " << error << "\n";
    return rc == 0 ? 1 : rc;
  }
  return rc;
}

int usage() {
  std::cerr << "usage: fetch-cli [--jobs N] [--scale smoke|default|full] "
               "[--cache-dir DIR]\n"
               "                 [--log-level LEVEL] [--log-file PATH]\n"
               "                 <detect|fde|unwind|compare|audit> <elf> [pc]\n"
               "       fetch-cli [opts] detect [--metrics-json PATH] <elf>\n"
               "       fetch-cli [opts] corpus [self-built|wild]\n"
               "       fetch-cli [opts] batch [--from-file LIST] [--dir DIR]\n"
               "                 [--json PATH] [--csv PATH] "
               "[--metrics-json PATH]\n"
               "                 [--truth auto|dynsym|ehframe|sidecar] "
               "[<elf>...]\n"
               "       fetch-cli [opts] serve [--socket PATH] "
               "[--cache-capacity N]\n"
               "                 [--max-connections N] [--queue-depth N]\n"
               "                 [--idle-timeout-ms N] [--write-stall-ms N]\n"
               "                 [--slow-query-ms N] [--daemonize] "
               "[--pidfile PATH]\n"
               "       fetch-cli [opts] query [--socket PATH] [--retries N] "
               "[--timeout MS]\n"
               "                 [--op ping|stats|metrics|query] "
               "[--format FORMAT]\n"
               "                 [--trace ID] [<elf>...]\n"
               "       fetch-cli [opts] shutdown [--socket PATH] "
               "[--retries N] [--timeout MS]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  eval::CorpusOptions corpus_options;
  corpus_options.cache_dir = util::default_cache_dir();
  std::size_t jobs = 0;  // 0 → FETCH_JOBS env / hardware default
  BatchArgs batch;
  ServiceArgs service;
  std::string log_level;     // --log-level (any command)
  std::string log_file;      // --log-file (any command)
  std::string metrics_json;  // --metrics-json (detect/batch only)
  std::vector<const char*> args;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--jobs") {
      if (i + 1 >= argc || !util::parse_jobs(argv[++i], &jobs)) {
        return usage();
      }
    } else if (arg.rfind("--jobs=", 0) == 0) {
      if (!util::parse_jobs(arg.substr(7), &jobs)) {
        return usage();
      }
    } else if (arg == "--from-file" && i + 1 < argc) {
      batch.from_files.emplace_back(argv[++i]);
    } else if (arg.rfind("--from-file=", 0) == 0) {
      batch.from_files.emplace_back(arg.substr(12));
    } else if (arg == "--dir" && i + 1 < argc) {
      batch.dirs.emplace_back(argv[++i]);
    } else if (arg.rfind("--dir=", 0) == 0) {
      batch.dirs.emplace_back(arg.substr(6));
    } else if (arg == "--json" && i + 1 < argc) {
      batch.json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      batch.json_path = arg.substr(7);
    } else if (arg == "--csv" && i + 1 < argc) {
      batch.csv_path = argv[++i];
    } else if (arg.rfind("--csv=", 0) == 0) {
      batch.csv_path = arg.substr(6);
    } else if (arg == "--truth" && i + 1 < argc) {
      const auto mode = eval::parse_truth_mode(argv[++i]);
      if (!mode) {
        return usage();
      }
      batch.truth = *mode;
      batch.truth_set = true;
    } else if (arg.rfind("--truth=", 0) == 0) {
      const auto mode = eval::parse_truth_mode(arg.substr(8));
      if (!mode) {
        return usage();
      }
      batch.truth = *mode;
      batch.truth_set = true;
    } else if (arg == "--scale" && i + 1 < argc) {
      const auto scale = synth::parse_scale(argv[++i]);
      if (!scale) {
        return usage();
      }
      corpus_options.scale = *scale;
    } else if (arg.rfind("--scale=", 0) == 0) {
      const auto scale = synth::parse_scale(arg.substr(8));
      if (!scale) {
        return usage();
      }
      corpus_options.scale = *scale;
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      corpus_options.cache_dir = argv[++i];
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      corpus_options.cache_dir = arg.substr(12);
    } else if (arg == "--socket" && i + 1 < argc) {
      service.socket = argv[++i];
    } else if (arg.rfind("--socket=", 0) == 0) {
      service.socket = arg.substr(9);
    } else if (arg == "--cache-capacity" && i + 1 < argc) {
      if (!util::parse_jobs(argv[++i], &service.cache_capacity) ||
          service.cache_capacity == 0) {
        return usage();
      }
    } else if (arg.rfind("--cache-capacity=", 0) == 0) {
      if (!util::parse_jobs(arg.substr(17), &service.cache_capacity) ||
          service.cache_capacity == 0) {
        return usage();
      }
    } else if (arg == "--max-connections" && i + 1 < argc) {
      if (!util::parse_jobs(argv[++i], &service.max_connections) ||
          service.max_connections == 0) {
        return usage();
      }
    } else if (arg.rfind("--max-connections=", 0) == 0) {
      if (!util::parse_jobs(arg.substr(18), &service.max_connections) ||
          service.max_connections == 0) {
        return usage();
      }
    } else if (arg == "--queue-depth" && i + 1 < argc) {
      if (!util::parse_jobs(argv[++i], &service.queue_depth) ||
          service.queue_depth == 0) {
        return usage();
      }
    } else if (arg.rfind("--queue-depth=", 0) == 0) {
      if (!util::parse_jobs(arg.substr(14), &service.queue_depth) ||
          service.queue_depth == 0) {
        return usage();
      }
    } else if (arg == "--idle-timeout-ms" && i + 1 < argc) {
      std::size_t ms = 0;
      if (!util::parse_jobs(argv[++i], &ms)) {
        return usage();
      }
      service.idle_timeout_ms = ms;  // 0 = disabled
    } else if (arg.rfind("--idle-timeout-ms=", 0) == 0) {
      std::size_t ms = 0;
      if (!util::parse_jobs(arg.substr(18), &ms)) {
        return usage();
      }
      service.idle_timeout_ms = ms;
    } else if (arg == "--write-stall-ms" && i + 1 < argc) {
      std::size_t ms = 0;
      if (!util::parse_jobs(argv[++i], &ms)) {
        return usage();
      }
      service.write_stall_ms = ms;  // 0 = disabled
    } else if (arg.rfind("--write-stall-ms=", 0) == 0) {
      std::size_t ms = 0;
      if (!util::parse_jobs(arg.substr(17), &ms)) {
        return usage();
      }
      service.write_stall_ms = ms;
    } else if (arg == "--daemonize") {
      service.daemonize = true;
    } else if (arg == "--pidfile" && i + 1 < argc) {
      service.pidfile = argv[++i];
    } else if (arg.rfind("--pidfile=", 0) == 0) {
      service.pidfile = arg.substr(10);
    } else if (arg == "--retries" && i + 1 < argc) {
      if (!util::parse_jobs(argv[++i], &service.retries)) {
        return usage();
      }
    } else if (arg.rfind("--retries=", 0) == 0) {
      if (!util::parse_jobs(arg.substr(10), &service.retries)) {
        return usage();
      }
    } else if (arg == "--timeout" && i + 1 < argc) {
      std::size_t ms = 0;
      if (!util::parse_jobs(argv[++i], &ms) || ms == 0) {
        return usage();
      }
      service.timeout_ms = ms;
    } else if (arg.rfind("--timeout=", 0) == 0) {
      std::size_t ms = 0;
      if (!util::parse_jobs(arg.substr(10), &ms) || ms == 0) {
        return usage();
      }
      service.timeout_ms = ms;
    } else if (arg == "--op" && i + 1 < argc) {
      service.op = argv[++i];
    } else if (arg.rfind("--op=", 0) == 0) {
      service.op = arg.substr(5);
    } else if (arg == "--slow-query-ms" && i + 1 < argc) {
      std::size_t ms = 0;
      if (!util::parse_jobs(argv[++i], &ms)) {
        return usage();
      }
      service.slow_query_ms = ms;  // 0 = disabled
    } else if (arg.rfind("--slow-query-ms=", 0) == 0) {
      std::size_t ms = 0;
      if (!util::parse_jobs(arg.substr(16), &ms)) {
        return usage();
      }
      service.slow_query_ms = ms;
    } else if (arg == "--format" && i + 1 < argc) {
      service.format = argv[++i];
    } else if (arg.rfind("--format=", 0) == 0) {
      service.format = arg.substr(9);
    } else if (arg == "--trace" && i + 1 < argc) {
      service.trace = argv[++i];
    } else if (arg.rfind("--trace=", 0) == 0) {
      service.trace = arg.substr(8);
    } else if (arg == "--log-level" && i + 1 < argc) {
      log_level = argv[++i];
    } else if (arg.rfind("--log-level=", 0) == 0) {
      log_level = arg.substr(12);
    } else if (arg == "--log-file" && i + 1 < argc) {
      log_file = argv[++i];
    } else if (arg.rfind("--log-file=", 0) == 0) {
      log_file = arg.substr(11);
    } else if (arg == "--metrics-json" && i + 1 < argc) {
      metrics_json = argv[++i];
    } else if (arg.rfind("--metrics-json=", 0) == 0) {
      metrics_json = arg.substr(15);
    } else if (!arg.empty() && arg.front() == '-') {
      return usage();  // unknown flags must not pass as positionals
    } else {
      args.push_back(argv[i]);
    }
  }
  corpus_options.jobs = jobs;
  if (!log_level.empty()) {
    const auto level = obs::parse_log_level(log_level);
    if (!level) {
      return usage();
    }
    obs::Logger::instance().set_level(*level);
  }
  if (!log_file.empty()) {
    std::string error;
    if (!obs::Logger::instance().open_file(log_file, &error)) {
      std::cerr << "fetch-cli: --log-file: " << error << "\n";
      return 2;
    }
  }
  if (args.empty()) {
    return usage();
  }
  const std::string cmd = args[0];
  if (batch.any() && cmd != "batch") {
    return usage();  // batch-only flags on a non-batch command
  }
  if (!metrics_json.empty() && cmd != "detect" && cmd != "batch") {
    return usage();  // --metrics-json dumps the analysis pipeline's
                     // registry; service commands use `--op metrics`
  }
  const bool service_cmd =
      cmd == "serve" || cmd == "query" || cmd == "shutdown";
  if (service.any() && !service_cmd) {
    return usage();  // service-only flags on a non-service command
  }
  if ((service.cache_capacity != 0 || service.serve_only()) &&
      cmd != "serve") {
    return usage();  // daemon knobs only make sense on the daemon
  }
  if (service.client_only() && cmd == "serve") {
    return usage();  // client knobs only make sense on client commands
  }
  if (!service.op.empty() &&
      (cmd != "query" ||
       (service.op != "ping" && service.op != "stats" &&
        service.op != "metrics" && service.op != "query"))) {
    return usage();
  }
  if (!service.format.empty()) {
    // --format binds to a specific op's renderings; anything else is a
    // usage error rather than a silently ignored flag.
    const bool stats_fmt = service.op == "stats" &&
                           (service.format == "table" ||
                            service.format == "json");
    const bool metrics_fmt = service.op == "metrics" &&
                             (service.format == "json" ||
                              service.format == "prom");
    if (cmd != "query" || (!stats_fmt && !metrics_fmt)) {
      return usage();
    }
  }
  if (!service.trace.empty() && (cmd != "query" || !service.op.empty())) {
    return usage();  // --trace rides a path-analyzing query only
  }
  if (cmd == "batch") {
    return finish_with_metrics(metrics_json, cmd_batch(args, batch, jobs));
  }
  if (cmd == "serve") {
    return args.size() == 1 ? cmd_serve(jobs, service) : usage();
  }
  if (cmd == "query") {
    // `--op ping|stats|metrics` take no paths; a path-analyzing query
    // needs ≥ 1.
    const bool pathless = service.op == "ping" || service.op == "stats" ||
                          service.op == "metrics";
    if (pathless) {
      return args.size() == 1 ? cmd_query(args, service) : usage();
    }
    return args.size() >= 2 ? cmd_query(args, service) : usage();
  }
  if (cmd == "shutdown") {
    return args.size() == 1 ? cmd_shutdown(service) : usage();
  }
  if (cmd == "detect") {
    // Session-based so `detect` and served `query` render through the
    // same code path (byte-identical output).
    return args.size() == 2
               ? finish_with_metrics(metrics_json, cmd_detect(args[1]))
               : usage();
  }
  if (cmd == "corpus") {
    // Shared validation (same path as the benches): reject unusable
    // --cache-dir/FETCH_CACHE_DIR values before doing any work. Only the
    // corpus command touches the cache, so only it validates — `detect`
    // and friends must keep working with a stale FETCH_CACHE_DIR.
    if (!corpus_options.cache_dir.empty()) {
      std::string error;
      if (!util::prepare_cache_dir(&corpus_options.cache_dir, &error)) {
        std::cerr << "fetch-cli: --cache-dir/FETCH_CACHE_DIR: " << error
                  << "\n";
        return 2;
      }
    }
    try {
      return cmd_corpus(args.size() > 1 ? args[1] : "self-built",
                        corpus_options);
    } catch (const std::exception& e) {
      std::cerr << "error: " << e.what() << "\n";
      return 1;
    }
  }
  if (args.size() < 2) {
    return usage();
  }
  try {
    const elf::ElfFile elf = elf::ElfFile::load(args[1]);
    if (cmd == "fde") {
      return cmd_fde(elf);
    }
    if (cmd == "unwind") {
      if (args.size() < 3) {
        return usage();
      }
      return cmd_unwind(elf, std::strtoull(args[2], nullptr, 0));
    }
    if (cmd == "compare") {
      return cmd_compare(elf, jobs);
    }
    if (cmd == "audit") {
      return cmd_audit(elf);
    }
    return usage();
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
