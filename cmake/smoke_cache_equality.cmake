# Runs ${BENCH_BIN} --scale smoke three ways — without a cache, with a
# fresh cache directory (populate), and again against the populated cache
# (load) — and fails unless all three succeed with byte-identical stdout
# and the second run actually wrote a corpus file. Together with
# smoke_equality.cmake (serial vs parallel) this is the ctest-level
# guarantee that cached, sharded, and serial corpus materialization
# cannot change any reported number.

if(NOT DEFINED BENCH_BIN)
  message(FATAL_ERROR "BENCH_BIN not set")
endif()
if(NOT DEFINED CACHE_DIR)
  message(FATAL_ERROR "CACHE_DIR not set")
endif()

file(REMOVE_RECURSE ${CACHE_DIR})

# Neutralize any ambient FETCH_CACHE_DIR: the baseline run must really
# regenerate, or this test degrades to comparing the cache with itself.
execute_process(COMMAND ${CMAKE_COMMAND} -E env FETCH_CACHE_DIR=
                        ${BENCH_BIN} --scale smoke --jobs 2
                OUTPUT_VARIABLE nocache_out
                RESULT_VARIABLE nocache_rc)
if(NOT nocache_rc EQUAL 0)
  message(FATAL_ERROR "${BENCH_BIN} --scale smoke failed: ${nocache_rc}")
endif()

execute_process(COMMAND ${BENCH_BIN} --scale smoke --jobs 2
                        --cache-dir ${CACHE_DIR}
                OUTPUT_VARIABLE populate_out
                RESULT_VARIABLE populate_rc)
if(NOT populate_rc EQUAL 0)
  message(FATAL_ERROR
          "${BENCH_BIN} --scale smoke --cache-dir (populate) failed: "
          "${populate_rc}")
endif()

file(GLOB corpus_files ${CACHE_DIR}/*/corpus.bin)
if(corpus_files STREQUAL "")
  message(FATAL_ERROR "populate run left no corpus.bin under ${CACHE_DIR}")
endif()

execute_process(COMMAND ${BENCH_BIN} --scale smoke --jobs 2
                        --cache-dir ${CACHE_DIR}
                OUTPUT_VARIABLE cached_out
                RESULT_VARIABLE cached_rc)
if(NOT cached_rc EQUAL 0)
  message(FATAL_ERROR
          "${BENCH_BIN} --scale smoke --cache-dir (load) failed: ${cached_rc}")
endif()

if(NOT nocache_out STREQUAL populate_out)
  message(FATAL_ERROR "cache-populating output differs from uncached:\n"
                      "--- uncached ---\n${nocache_out}\n"
                      "--- populate ---\n${populate_out}")
endif()
if(NOT nocache_out STREQUAL cached_out)
  message(FATAL_ERROR "cache-loaded output differs from uncached:\n"
                      "--- uncached ---\n${nocache_out}\n"
                      "--- cached ---\n${cached_out}")
endif()

file(REMOVE_RECURSE ${CACHE_DIR})
