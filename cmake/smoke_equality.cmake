# Runs ${BENCH_BIN} --smoke twice — serial (--jobs 1) and parallel
# (--jobs 4) — and fails unless both succeed with byte-identical stdout.
# This is the ctest-level guarantee that the thread-pool evaluation engine
# cannot change any reported number.

if(NOT DEFINED BENCH_BIN)
  message(FATAL_ERROR "BENCH_BIN not set")
endif()

# Neutralize any ambient FETCH_CACHE_DIR so both runs really generate —
# this test is about the thread pool, not the corpus cache.
execute_process(COMMAND ${CMAKE_COMMAND} -E env FETCH_CACHE_DIR=
                        ${BENCH_BIN} --smoke --jobs 1
                OUTPUT_VARIABLE serial_out
                RESULT_VARIABLE serial_rc)
if(NOT serial_rc EQUAL 0)
  message(FATAL_ERROR "${BENCH_BIN} --smoke --jobs 1 failed: ${serial_rc}")
endif()

execute_process(COMMAND ${CMAKE_COMMAND} -E env FETCH_CACHE_DIR=
                        ${BENCH_BIN} --smoke --jobs 4
                OUTPUT_VARIABLE parallel_out
                RESULT_VARIABLE parallel_rc)
if(NOT parallel_rc EQUAL 0)
  message(FATAL_ERROR "${BENCH_BIN} --smoke --jobs 4 failed: ${parallel_rc}")
endif()

if(NOT serial_out STREQUAL parallel_out)
  message(FATAL_ERROR "parallel output differs from serial output:\n"
                      "--- jobs=1 ---\n${serial_out}\n"
                      "--- jobs=4 ---\n${parallel_out}")
endif()
