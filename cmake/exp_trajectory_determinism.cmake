# Acceptance check for the experiment runner: two exp_run invocations of
# the same spec must produce byte-identical trajectory reports modulo the
# timing fields (the `"value": N` numbers inside results rows), and a
# third invocation must APPEND to an existing trajectory, not rewrite it.
#
# Inputs: -DEXP_RUN=<exp_run binary> -DSPEC=<spec json> -DBIN_DIR=<bench
# binary dir> -DWORK_DIR=<scratch dir>

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(run_exp out_dir trajectory commit)
  execute_process(
    COMMAND ${EXP_RUN} --spec ${SPEC} --bin-dir ${BIN_DIR}
            --out-dir ${out_dir} --trajectory ${trajectory}
            --commit ${commit}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "exp_run failed (rc=${rc}):\n${out}\n${err}")
  endif()
endfunction()

run_exp(${WORK_DIR}/run1 ${WORK_DIR}/t1.json pinned-commit)
run_exp(${WORK_DIR}/run2 ${WORK_DIR}/t2.json pinned-commit)

# Blank out the measured numbers — everything else (structure, ids,
# ordering, axes, units, spec hash) must match byte for byte. The
# fetch-bench-v1 producers keep timings in `value` rows except
# bench_table5_runtime, whose rows carry avg_ms_per_binary/total_s.
function(normalized path out_var)
  file(READ ${path} text)
  foreach(field value avg_ms_per_binary total_s)
    string(REGEX REPLACE "\"${field}\": [-+0-9.eE]+" "\"${field}\": X"
           text "${text}")
  endforeach()
  set(${out_var} "${text}" PARENT_SCOPE)
endfunction()

normalized(${WORK_DIR}/t1.json first)
normalized(${WORK_DIR}/t2.json second)
if(NOT first STREQUAL second)
  file(WRITE ${WORK_DIR}/t1.normalized "${first}")
  file(WRITE ${WORK_DIR}/t2.normalized "${second}")
  message(FATAL_ERROR "trajectory reports differ beyond timing fields: "
          "diff ${WORK_DIR}/t1.normalized ${WORK_DIR}/t2.normalized")
endif()

# Appending: a second entry lands behind the first, history intact.
run_exp(${WORK_DIR}/run3 ${WORK_DIR}/t1.json later-commit)
file(READ ${WORK_DIR}/t1.json appended)
string(REGEX MATCHALL "\"commit\": \"pinned-commit\"" first_entries
       "${appended}")
string(REGEX MATCHALL "\"commit\": \"later-commit\"" second_entries
       "${appended}")
list(LENGTH first_entries first_count)
list(LENGTH second_entries second_count)
if(NOT first_count EQUAL 1 OR NOT second_count EQUAL 1)
  message(FATAL_ERROR "trajectory append rewrote history: "
          "pinned=${first_count} later=${second_count}")
endif()

message(STATUS "trajectory determinism + append OK")
