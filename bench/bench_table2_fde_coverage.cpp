/// \file bench_table2_fde_coverage.cpp
/// Regenerates Table II and the Q1 study (§IV-B): per-project FDE coverage
/// of the ground-truth function starts across the self-built corpus, the
/// total coverage rate (paper: 99.87%), and the nature of the functions
/// FDEs miss (paper: overwhelmingly hand-written assembly).

#include <iostream>

#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace fetch;
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_header(
      "Table II / §IV-B (Q1) — FDE coverage on the self-built corpus",
      "FDE-alone coverage 99.87%, misses concentrated in assembly "
      "functions, 33/1352 binaries with gaps");

  const eval::Corpus corpus = bench::self_built_corpus(opts);

  struct ProjectAgg {
    std::string type;
    std::string lang;
    std::size_t binaries = 0;
    std::size_t truth = 0;
    std::size_t covered = 0;
  };
  std::map<std::string, ProjectAgg> by_project;

  std::size_t total_truth = 0;
  std::size_t total_covered = 0;
  std::size_t bins_with_misses = 0;
  std::size_t missed_asm = 0;
  std::size_t missed_other = 0;

  // Per-entry detection runs concurrently; the accounting below stays
  // serial and in entry order.
  struct EntryCoverage {
    std::string key;
    std::size_t truth = 0;
    std::size_t covered = 0;
    std::size_t missed_asm = 0;
    std::size_t missed_other = 0;
  };
  const auto partials = util::parallel_map<EntryCoverage>(
      opts.effective_jobs(), corpus.size(), [&](std::size_t i) {
        const eval::CorpusEntry& entry = corpus.entries()[i];
        const auto fde_starts = bench::run_fde_only(entry);
        EntryCoverage p;
        // Project key: the longest project name that prefixes the binary
        // name (binary names are "<project>-<compiler>-<opt>[-vN]").
        for (const auto* defs : {&synth::projects(),
                                 &synth::extended_projects()}) {
          for (const synth::ProjectDef& def : *defs) {
            if (entry.bin.name.rfind(def.name + "-", 0) == 0 &&
                def.name.size() > p.key.size()) {
              p.key = def.name;
            }
          }
        }
        for (const std::uint64_t s : entry.bin.truth.starts) {
          ++p.truth;
          if (fde_starts.count(s) != 0) {
            ++p.covered;
          } else if (entry.bin.truth.asm_functions.count(s) != 0) {
            ++p.missed_asm;
          } else {
            ++p.missed_other;
          }
        }
        return p;
      });
  for (const EntryCoverage& p : partials) {
    ProjectAgg& agg = by_project[p.key];
    ++agg.binaries;
    agg.truth += p.truth;
    agg.covered += p.covered;
    total_truth += p.truth;
    total_covered += p.covered;
    missed_asm += p.missed_asm;
    missed_other += p.missed_other;
    bins_with_misses += p.truth > p.covered ? 1 : 0;
  }
  for (const auto* defs : {&synth::projects(), &synth::extended_projects()}) {
    for (const synth::ProjectDef& def : *defs) {
      if (by_project.count(def.name) != 0) {
        by_project[def.name].type = def.type;
        by_project[def.name].lang = def.lang;
      }
    }
  }

  eval::TextTable table({"Project", "Type", "Lang", "Bins", "FDE%"});
  for (const auto& [name, agg] : by_project) {
    table.add_row({name, agg.type, agg.lang, std::to_string(agg.binaries),
                   eval::fmt_pct(static_cast<double>(agg.covered),
                                 static_cast<double>(agg.truth))});
  }
  table.print(std::cout);

  std::cout << "\nTotal: FDEs cover " << total_covered << " of "
            << total_truth << " function starts ("
            << eval::fmt_pct(static_cast<double>(total_covered),
                             static_cast<double>(total_truth))
            << "%)  [paper: 1,103,832 of 1,105,278 = 99.87%]\n";
  std::cout << "Binaries with FDE misses: " << bins_with_misses << " of "
            << corpus.size() << "  [paper: 33 of 1,352]\n";
  std::cout << "Missed functions that are assembly: " << missed_asm
            << " of " << (missed_asm + missed_other)
            << "  [paper: 1,330 of 1,446]\n";
  return 0;
}
