/// \file bench_fig5a_ghidra_ladder.cpp
/// Regenerates Figure 5a: the GHIDRA strategy ladder — for each strategy
/// combination on top of call frames, the number of corpus binaries with
/// full coverage and full accuracy. Expected shape (paper, 1,352 bins):
///   FDE            cov 1319 / acc 864
///   FDE+Rec+CFR    cov 1274 / acc 810   (control-flow repair hurts)
///   FDE+Rec        cov 1346 / acc 830
///   FDE+Rec+Fsig   cov 1346 / acc 830   (no coverage gain)
///   FDE+Rec+Tcall  cov 1346 / acc 697→  (tiny gain, many FPs)

#include <iostream>

#include "baselines/tools.hpp"
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace fetch;
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_header("Figure 5a — GHIDRA strategy ladder",
                      "full-coverage / full-accuracy binary counts per "
                      "strategy combination");

  const eval::Corpus corpus = bench::self_built_corpus(opts);
  eval::TextTable table(
      {"Strategy", "FullCov", "FullAcc", "FP-total", "FN-total"});

  auto ghidra_with = [](const baselines::GhidraOptions& options) {
    return [options](const eval::CorpusEntry& entry) {
      return baselines::ghidra_like(entry.elf, options);
    };
  };

  baselines::GhidraOptions with_cfr;  // GHIDRA defaults: CFR on
  baselines::GhidraOptions no_cfr;
  no_cfr.cfr = false;
  baselines::GhidraOptions fsig = no_cfr;
  fsig.fsig = true;
  baselines::GhidraOptions tcall = no_cfr;
  tcall.tcall = true;

  // All (entry × ladder-step) cells run concurrently on one pool.
  const std::vector<eval::StrategySpec> ladder = {
      {"FDE", bench::run_fde_only},
      {"FDE+Rec+CFR", ghidra_with(with_cfr)},
      {"FDE+Rec", ghidra_with(no_cfr)},
      {"FDE+Rec+Fsig", ghidra_with(fsig)},
      {"FDE+Rec+Tcall", ghidra_with(tcall)},
  };
  for (const eval::StrategyOutcome& out :
       eval::run_matrix(corpus, ladder, opts.jobs)) {
    bench::add_ladder_row(table, out.name, out.total);
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: CFR reduces coverage below plain "
               "FDE+Rec; Fsig adds no coverage; Tcall adds false "
               "positives (accuracy drops).\n";
  return 0;
}
