/// \file bench_fig5a_ghidra_ladder.cpp
/// Regenerates Figure 5a: the GHIDRA strategy ladder — for each strategy
/// combination on top of call frames, the number of corpus binaries with
/// full coverage and full accuracy. Expected shape (paper, 1,352 bins):
///   FDE            cov 1319 / acc 864
///   FDE+Rec+CFR    cov 1274 / acc 810   (control-flow repair hurts)
///   FDE+Rec        cov 1346 / acc 830
///   FDE+Rec+Fsig   cov 1346 / acc 830   (no coverage gain)
///   FDE+Rec+Tcall  cov 1346 / acc 697→  (tiny gain, many FPs)

#include <iostream>

#include "baselines/tools.hpp"
#include "bench/common.hpp"

int main() {
  using namespace fetch;
  bench::print_header("Figure 5a — GHIDRA strategy ladder",
                      "full-coverage / full-accuracy binary counts per "
                      "strategy combination");

  const eval::Corpus corpus = eval::Corpus::self_built();
  eval::TextTable table(
      {"Strategy", "FullCov", "FullAcc", "FP-total", "FN-total"});

  auto run_ghidra = [&corpus](const baselines::GhidraOptions& options) {
    return eval::run_strategy(
        corpus, [&options](const eval::CorpusEntry& entry) {
          return baselines::ghidra_like(entry.elf, options);
        });
  };

  bench::add_ladder_row(table, "FDE",
                        eval::run_strategy(corpus, bench::run_fde_only));

  baselines::GhidraOptions with_cfr;  // GHIDRA defaults: CFR on
  bench::add_ladder_row(table, "FDE+Rec+CFR", run_ghidra(with_cfr));

  baselines::GhidraOptions no_cfr;
  no_cfr.cfr = false;
  bench::add_ladder_row(table, "FDE+Rec", run_ghidra(no_cfr));

  baselines::GhidraOptions fsig = no_cfr;
  fsig.fsig = true;
  bench::add_ladder_row(table, "FDE+Rec+Fsig", run_ghidra(fsig));

  baselines::GhidraOptions tcall = no_cfr;
  tcall.tcall = true;
  bench::add_ladder_row(table, "FDE+Rec+Tcall", run_ghidra(tcall));

  table.print(std::cout);
  std::cout << "\nExpected shape: CFR reduces coverage below plain "
               "FDE+Rec; Fsig adds no coverage; Tcall adds false "
               "positives (accuracy drops).\n";
  return 0;
}
