/// \file bench_service_throughput.cpp
/// Load generator for the resident analysis service (`fetch-cli serve`):
/// measures what the result cache buys over one-shot analysis.
///
/// Phases (all against a real Unix-socket round trip):
///   oneshot   eval::AnalysisSession per request, no daemon — what every
///             cold `fetch-cli detect` run pays
///   cold      first query per unique binary through the service (cache
///             misses: socket + hash + full analysis)
///   warm      N client threads hammering the now-cached set (hits:
///             socket + hash only) — QPS and p50/p99 latency
///   open_loop fixed-rate scheduled arrivals over the cached set;
///             latency is measured from the scheduled send time, so
///             server stalls show up as tail latency instead of being
///             absorbed by the closed loop (coordinated omission). A
///             log2 histogram of the distribution lands in the report.
///
/// Every served result is byte-compared against a local analysis of the
/// same file, so the bench doubles as an end-to-end equality check of
/// the served path. With `--json` the report (schema fetch-bench-v1)
/// carries cold/warm latencies, warm QPS, and the derived
/// `warm_speedup_x` = oneshot mean / warm mean — the ratio the
/// "cache hits must be ≥10× cheaper than one-shot runs" acceptance
/// criterion tracks via bench_diff.
///
/// Flags beyond the common set (--jobs/--scale/--json): --socket PATH
/// targets an already-running external daemon (default: an in-process
/// server on a private socket); --clients N / --requests N override the
/// scale-derived load shape; --open-loop QPS overrides the open-loop
/// arrival rate.

#include <unistd.h>

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <memory>
#include <numeric>
#include <string_view>
#include <thread>

#include "bench/common.hpp"
#include "eval/session.hpp"
#include "obs/metrics.hpp"
#include "service/client.hpp"
#include "service/server.hpp"
#include "synth/codegen.hpp"
#include "synth/corpus.hpp"
#include "util/rng.hpp"

namespace {

using namespace fetch;
using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point start) {
  return std::chrono::duration<double, std::micro>(Clock::now() - start)
      .count();
}

struct LoadShape {
  std::size_t files = 3;
  std::size_t clients = 2;
  std::size_t requests_per_client = 40;
  /// Scheduled arrival rate for the open-loop phase. Unlike the warm
  /// closed loop (a client waits for its reply before sending again, so
  /// a slow server quietly throttles its own load), open-loop arrivals
  /// fire on a fixed clock and latency is measured from the *scheduled*
  /// send time — queueing delay from a stalled server lands in the tail
  /// instead of being coordinated away.
  double open_loop_qps = 300.0;
};

LoadShape shape_for(const bench::BenchOptions& opts) {
  LoadShape shape;
  switch (opts.scale) {
    case synth::Scale::kSmoke:
      shape = {3, 2, 40, 300.0};
      break;
    case synth::Scale::kDefault:
      shape = {8, 4, 250, 800.0};
      break;
    case synth::Scale::kFull:
      shape = {16, 8, 1000, 1500.0};
      break;
  }
  return shape;
}

/// Writes \p count deterministic synthetic binaries into a fresh temp
/// directory and returns their paths.
std::vector<std::string> write_workload(std::size_t count) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("fetch-svc-bench-" + std::to_string(::getpid()));
  fs::create_directories(dir);
  std::vector<std::string> paths;
  const auto& projects = synth::projects();
  for (std::size_t i = 0; i < count; ++i) {
    const auto spec = synth::make_program(
        projects[i % projects.size()],
        synth::profile_for(i % 2 == 0 ? "gcc" : "llvm", "O2"),
        0x5eed + 97 * i);
    const synth::SynthBinary bin = synth::generate(spec);
    const fs::path path = dir / ("workload_" + std::to_string(i) + ".bin");
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(reinterpret_cast<const char*>(bin.image.data()),
              static_cast<std::streamsize>(bin.image.size()));
    if (!out) {
      std::cerr << "error: cannot write workload file " << path << "\n";
      std::exit(2);
    }
    paths.push_back(path.string());
  }
  return paths;
}

double mean_us(const std::vector<double>& samples) {
  if (samples.empty()) {
    return 0.0;
  }
  return std::accumulate(samples.begin(), samples.end(), 0.0) /
         static_cast<double>(samples.size());
}

double percentile_us(std::vector<double> samples, double p) {
  if (samples.empty()) {
    return 0.0;
  }
  std::sort(samples.begin(), samples.end());
  const auto rank = static_cast<std::size_t>(
      p * static_cast<double>(samples.size() - 1) + 0.5);
  return samples[std::min(rank, samples.size() - 1)];
}

service::ServiceClient connect_or_die(const std::string& socket) {
  std::string error;
  auto client = service::ServiceClient::connect(socket, &error);
  if (!client) {
    std::cerr << "error: " << error << "\n";
    std::exit(2);
  }
  return std::move(*client);
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<char*> passthrough;
  bench::BenchOptions opts = bench::parse_args(argc, argv, &passthrough);
  LoadShape shape = shape_for(opts);
  std::string external_socket;
  for (std::size_t i = 0; i < passthrough.size(); ++i) {
    const std::string_view arg = passthrough[i];
    auto next = [&]() -> std::string_view {
      if (i + 1 >= passthrough.size()) {
        std::cerr << "usage: bench_service_throughput [common flags] "
                     "[--socket PATH] [--clients N] [--requests N] "
                     "[--open-loop QPS]\n";
        std::exit(2);
      }
      return passthrough[++i];
    };
    if (arg == "--socket") {
      external_socket = next();
    } else if (arg.rfind("--socket=", 0) == 0) {
      external_socket = arg.substr(9);
    } else if (arg == "--clients") {
      if (!util::parse_jobs(next(), &shape.clients) || shape.clients == 0) {
        std::exit(2);
      }
    } else if (arg == "--requests") {
      if (!util::parse_jobs(next(), &shape.requests_per_client) ||
          shape.requests_per_client == 0) {
        std::exit(2);
      }
    } else if (arg == "--open-loop" || arg.rfind("--open-loop=", 0) == 0) {
      const std::string value(arg == "--open-loop" ? next()
                                                   : arg.substr(12));
      try {
        shape.open_loop_qps = std::stod(value);
      } catch (...) {
        shape.open_loop_qps = -1.0;
      }
      if (shape.open_loop_qps <= 0.0) {
        std::cerr << "error: --open-loop wants a positive arrival rate\n";
        std::exit(2);
      }
    } else {
      std::cerr << "bench_service_throughput: unknown flag " << arg << "\n";
      return 2;
    }
  }

  bench::print_header("Service throughput — resident daemon vs one-shot",
                      "cold/warm query latency and cache-hit QPS "
                      "(fetch-service-v1)");
  std::cout << "files: " << shape.files << "  clients: " << shape.clients
            << "  requests/client: " << shape.requests_per_client << "\n\n";

  const std::vector<std::string> files = write_workload(shape.files);

  // In-process daemon unless --socket points at an external one. The
  // socket still carries every byte, so in-process numbers measure the
  // full protocol path minus only process-spawn noise.
  std::unique_ptr<service::ServiceServer> server;
  std::thread server_thread;
  std::string socket = external_socket;
  if (socket.empty()) {
    service::ServerOptions server_options;
    server_options.socket_path =
        "/tmp/fetch-svc-bench-" + std::to_string(::getpid()) + ".sock";
    server_options.workers = opts.effective_jobs();
    server = std::make_unique<service::ServiceServer>(server_options);
    std::string error;
    if (!server->start(&error)) {
      std::cerr << "error: " << error << "\n";
      return 2;
    }
    server_thread = std::thread([&server] { server->run(); });
    socket = server->socket_path();
  }

  // --- oneshot: the cost a cold fetch-cli run pays per binary ---------------
  const eval::AnalysisSession session;
  std::vector<eval::FileAnalysis> local(files.size());
  std::vector<double> oneshot_us;
  for (std::size_t i = 0; i < files.size(); ++i) {
    const auto start = Clock::now();
    local[i] = session.analyze_file(files[i]);
    oneshot_us.push_back(us_since(start));
    if (!local[i].row.ok) {
      std::cerr << "error: workload analysis failed: " << local[i].row.error
                << "\n";
      return 2;
    }
  }

  // --- cold: first query per unique binary (cache misses) -------------------
  std::vector<double> cold_us;
  {
    service::ServiceClient client = connect_or_die(socket);
    std::string error;
    for (std::size_t i = 0; i < files.size(); ++i) {
      const auto start = Clock::now();
      const auto result = client.query(files[i], &error);
      cold_us.push_back(us_since(start));
      if (!result) {
        std::cerr << "error: cold query failed: " << error << "\n";
        return 2;
      }
      // Served results must be byte-identical to the one-shot path: same
      // starts, same provenance, same metrics row shape.
      if (result->analysis.functions != local[i].functions ||
          result->analysis.content_hash != local[i].content_hash) {
        std::cerr << "error: served result diverges from one-shot analysis "
                     "for "
                  << files[i] << "\n";
        return 1;
      }
    }
  }

  // --- warm: concurrent clients over the cached set -------------------------
  std::vector<std::vector<double>> per_client(shape.clients);
  std::atomic<bool> failed{false};
  const auto warm_start = Clock::now();
  {
    std::vector<std::thread> clients;
    clients.reserve(shape.clients);
    for (std::size_t c = 0; c < shape.clients; ++c) {
      clients.emplace_back([&, c] {
        service::ServiceClient client = connect_or_die(socket);
        Rng rng(0xbe7c + 131 * c);
        std::string error;
        auto& samples = per_client[c];
        samples.reserve(shape.requests_per_client);
        for (std::size_t r = 0; r < shape.requests_per_client; ++r) {
          const std::string& path = files[rng.below(files.size())];
          const auto start = Clock::now();
          const auto result = client.query(path, &error);
          samples.push_back(us_since(start));
          if (!result || !result->analysis.row.ok) {
            std::cerr << "error: warm query failed: " << error << "\n";
            failed.store(true);
            return;
          }
        }
      });
    }
    for (std::thread& t : clients) {
      t.join();
    }
  }
  const double warm_elapsed_us = us_since(warm_start);
  if (failed.load()) {
    return 1;
  }

  std::vector<double> warm_us;
  for (const auto& samples : per_client) {
    warm_us.insert(warm_us.end(), samples.begin(), samples.end());
  }

  // --- open-loop: fixed-rate arrivals over the cached set -------------------
  // Request k is *scheduled* at start + k/rate regardless of how request
  // k-1 fared, and its latency runs from that scheduled instant. A server
  // that stalls therefore accumulates the backlog into the measured tail
  // (no coordinated omission).
  std::vector<std::vector<double>> open_loop_per_client(shape.clients);
  const std::size_t open_loop_total =
      shape.clients * shape.requests_per_client;
  const auto open_loop_interval =
      std::chrono::duration_cast<Clock::duration>(
          std::chrono::duration<double>(1.0 / shape.open_loop_qps));
  const auto open_loop_start = Clock::now() + std::chrono::milliseconds(50);
  {
    std::vector<std::thread> clients;
    clients.reserve(shape.clients);
    for (std::size_t c = 0; c < shape.clients; ++c) {
      clients.emplace_back([&, c] {
        service::ServiceClient client = connect_or_die(socket);
        Rng rng(0xa11d + 131 * c);
        std::string error;
        auto& samples = open_loop_per_client[c];
        samples.reserve(shape.requests_per_client);
        // The global schedule is interleaved across clients: client c
        // owns arrivals c, c+clients, c+2*clients, ...
        for (std::size_t r = c; r < open_loop_total; r += shape.clients) {
          const auto scheduled =
              open_loop_start + open_loop_interval * static_cast<long>(r);
          std::this_thread::sleep_until(scheduled);
          const std::string& path = files[rng.below(files.size())];
          const auto result = client.query(path, &error);
          samples.push_back(
              std::chrono::duration<double, std::micro>(Clock::now() -
                                                        scheduled)
                  .count());
          if (!result || !result->analysis.row.ok) {
            std::cerr << "error: open-loop query failed: " << error << "\n";
            failed.store(true);
            return;
          }
        }
      });
    }
    for (std::thread& t : clients) {
      t.join();
    }
  }
  const double open_loop_elapsed_us = std::chrono::duration<double,
                                                            std::micro>(
                                          Clock::now() - open_loop_start)
                                          .count();
  if (failed.load()) {
    return 1;
  }

  std::vector<double> open_loop_us;
  // The telemetry subsystem's log2-µs histogram, doubling as its
  // single-threaded soak test under a realistic latency distribution.
  obs::Histogram open_loop_hist;
  for (const auto& samples : open_loop_per_client) {
    open_loop_us.insert(open_loop_us.end(), samples.begin(), samples.end());
    for (const double us : samples) {
      open_loop_hist.record_us(
          static_cast<std::uint64_t>(std::max(us, 0.0)));
    }
  }

  // Single-flight/caching sanity from the horse's mouth: the daemon must
  // have computed each unique binary exactly once.
  {
    service::ServiceClient client = connect_or_die(socket);
    std::string error;
    const auto stats = client.stats(&error);
    if (!stats) {
      std::cerr << "error: stats request failed: " << error << "\n";
      return 1;
    }
    const util::json::Value* misses = stats->get("misses");
    if (misses == nullptr) {
      std::cerr << "error: stats response has no misses counter\n";
      return 1;
    }
    const auto server_misses =
        static_cast<std::uint64_t>(misses->as_double());
    // Only meaningful for the private in-process daemon: an external one
    // may have served other clients.
    if (external_socket.empty() && server_misses != files.size()) {
      std::cerr << "error: expected " << files.size()
                << " cache misses (one per unique binary), server reports "
                << server_misses << "\n";
      return 1;
    }
  }

  if (server != nullptr) {
    server->stop();
    server_thread.join();
  }
  std::error_code cleanup_ec;
  std::filesystem::remove_all(
      std::filesystem::path(files.front()).parent_path(), cleanup_ec);

  const double oneshot_mean = mean_us(oneshot_us);
  const double cold_mean = mean_us(cold_us);
  const double warm_mean = mean_us(warm_us);
  const double warm_p50 = percentile_us(warm_us, 0.50);
  const double warm_p99 = percentile_us(warm_us, 0.99);
  const double warm_qps = warm_elapsed_us == 0.0
                              ? 0.0
                              : static_cast<double>(warm_us.size()) * 1e6 /
                                    warm_elapsed_us;
  const double speedup = warm_mean == 0.0 ? 0.0 : oneshot_mean / warm_mean;
  const double open_loop_p50 = percentile_us(open_loop_us, 0.50);
  const double open_loop_p99 = percentile_us(open_loop_us, 0.99);
  const double open_loop_achieved_qps =
      open_loop_elapsed_us == 0.0
          ? 0.0
          : static_cast<double>(open_loop_us.size()) * 1e6 /
                open_loop_elapsed_us;

  eval::TextTable table({"case", "mean_us", "p50_us", "p99_us"});
  table.add_row({"oneshot", eval::fmt(oneshot_mean, 1),
                 eval::fmt(percentile_us(oneshot_us, 0.5), 1),
                 eval::fmt(percentile_us(oneshot_us, 0.99), 1)});
  table.add_row({"cold_query", eval::fmt(cold_mean, 1),
                 eval::fmt(percentile_us(cold_us, 0.5), 1),
                 eval::fmt(percentile_us(cold_us, 0.99), 1)});
  table.add_row({"warm_query", eval::fmt(warm_mean, 1),
                 eval::fmt(warm_p50, 1), eval::fmt(warm_p99, 1)});
  table.add_row({"open_loop", eval::fmt(mean_us(open_loop_us), 1),
                 eval::fmt(open_loop_p50, 1), eval::fmt(open_loop_p99, 1)});
  table.print(std::cout);
  std::cout << "\nwarm QPS: " << eval::fmt(warm_qps, 1)
            << "  (clients " << shape.clients << ")\n";
  std::cout << "warm speedup over one-shot: " << eval::fmt(speedup, 1)
            << "x\n";
  std::cout << "open-loop: target " << eval::fmt(shape.open_loop_qps, 1)
            << " req/s, achieved " << eval::fmt(open_loop_achieved_qps, 1)
            << " req/s (latency from scheduled arrival)\n";
  {
    std::uint64_t peak = 1;
    for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
      peak = std::max(peak, open_loop_hist.bucket_count(i));
    }
    for (std::size_t i = 0; i < obs::Histogram::kBuckets; ++i) {
      const std::uint64_t n = open_loop_hist.bucket_count(i);
      if (n == 0) {
        continue;
      }
      const auto bar = static_cast<std::size_t>(40 * n / peak);
      std::printf("  <%8llu us %6llu %s\n",
                  static_cast<unsigned long long>(obs::Histogram::le_us(i)),
                  static_cast<unsigned long long>(n),
                  std::string(std::max<std::size_t>(bar, 1), '#').c_str());
    }
  }

  // One metric per results row (name/value/unit), the shape bench_diff
  // matches and the other benches emit.
  util::json::Value doc = bench::json_report("bench_service_throughput", opts);
  util::json::Value* results = &doc.set("results", util::json::Value::array());
  auto add_metric = [&](const std::string& name, double value,
                        const char* unit) {
    util::json::Value row = util::json::Value::object();
    row.set("name", util::json::Value(name));
    row.set("value", util::json::Value::number(value, eval::fmt(value, 1)));
    row.set("unit", util::json::Value(unit));
    results->add(std::move(row));
  };
  add_metric("oneshot_mean", oneshot_mean, "us/req");
  add_metric("cold_query_mean", cold_mean, "us/req");
  add_metric("warm_query_mean", warm_mean, "us/req");
  add_metric("warm_query_p50", warm_p50, "us/req");
  add_metric("warm_query_p99", warm_p99, "us/req");
  add_metric("warm_qps", warm_qps, "req/s");
  add_metric("warm_speedup_x", speedup, "x");
  add_metric("open_loop_p50", open_loop_p50, "us/req");
  add_metric("open_loop_p99", open_loop_p99, "us/req");
  add_metric("open_loop_qps", open_loop_achieved_qps, "req/s");
  util::json::Value derived = util::json::Value::object();
  derived.set("open_loop_target_qps",
              util::json::Value::number(shape.open_loop_qps,
                                        eval::fmt(shape.open_loop_qps, 1)));
  {
    // Log2 histogram as {le_us, count} rows so a report consumer can
    // reconstruct the full latency distribution, not just two quantiles.
    util::json::Value hist = util::json::Value::array();
    for (const auto& [le, count] :
         obs::freeze_histogram(open_loop_hist).buckets) {
      if (count == 0) {
        continue;
      }
      util::json::Value bucket = util::json::Value::object();
      bucket.set("le_us", util::json::Value::number(le));
      bucket.set("count", util::json::Value::number(count));
      hist.add(std::move(bucket));
    }
    derived.set("open_loop_histogram", std::move(hist));
  }
  derived.set("files", util::json::Value::number(
                           static_cast<std::uint64_t>(files.size())));
  derived.set("clients", util::json::Value::number(
                             static_cast<std::uint64_t>(shape.clients)));
  derived.set("requests_per_client",
              util::json::Value::number(
                  static_cast<std::uint64_t>(shape.requests_per_client)));
  doc.set("derived", std::move(derived));
  bench::write_json_report(opts, doc);
  return 0;
}
