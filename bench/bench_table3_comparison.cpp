/// \file bench_table3_comparison.cpp
/// Regenerates Table III: FETCH vs the eight existing tools — false
/// positives and false negatives (in thousands) per optimization level.
/// Expected shape: FETCH has the best coverage everywhere and the best or
/// near-best accuracy; BAP/NUCLEUS are FP-heavy; DYNINST/RADARE2 miss the
/// most; ANGR is the best of the rest on coverage but FP-laden.

#include <iostream>

#include "baselines/tools.hpp"
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace fetch;
  const bench::BenchOptions options = bench::parse_args(argc, argv);
  bench::print_header("Table III — FETCH vs existing tools",
                      "FP#/FN# (thousands in the paper; raw counts here) "
                      "per optimization level");

  const eval::Corpus corpus = bench::self_built_corpus(options);
  const std::vector<std::string> opts = {"O2", "O3", "Os", "Ofast"};

  std::vector<eval::StrategySpec> rows;
  for (const baselines::ToolSpec& tool : baselines::conventional_tools()) {
    rows.push_back({tool.name, [run = tool.run](const eval::CorpusEntry& e) {
                      return run(e.elf);
                    }});
  }
  rows.push_back({"GHIDRA", [](const eval::CorpusEntry& e) {
                    return baselines::ghidra_like(e.elf, {});
                  }});
  rows.push_back({"ANGR", [](const eval::CorpusEntry& e) {
                    return baselines::angr_like(e.elf, {});
                  }});
  rows.push_back({"FETCH", bench::run_fetch});

  // Every (entry × tool) cell runs concurrently on one pool; only the
  // per-opt-level breakdown is printed (the overall aggregate is the sum
  // of the four rows).
  eval::TextTable table({"Tool", "OPT", "FP#", "FN#", "FullCov", "FullAcc"});
  for (eval::StrategyOutcome& out :
       eval::run_matrix(corpus, rows, options.jobs)) {
    for (const std::string& opt : opts) {
      const eval::Aggregate& agg = out.by_opt[opt];
      table.add_row({out.name, opt, std::to_string(agg.fp_total),
                     std::to_string(agg.fn_total),
                     std::to_string(agg.full_coverage),
                     std::to_string(agg.full_accuracy)});
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape [paper avgs, FP#/FN# in thousands]: "
               "DYNINST 11.3/84.9, BAP 132.5/90.7, RADARE2 3.6/95.7, "
               "NUCLEUS 21.9/20.6, IDA 1.8/36.2, NINJA 40.1/10.3, "
               "GHIDRA 34.4/5.2, ANGR 52.7/0.19, FETCH 0.67/0.11 — FETCH "
               "wins coverage everywhere, accuracy nearly everywhere.\n";
  return 0;
}
