/// \file bench_sec5c_algorithm1.cpp
/// Regenerates the §V-C evaluation of Algorithm 1 plus the design-choice
/// ablations DESIGN.md calls out:
///  * FP reduction (paper: 34,772 → 2,659, ~95% fixed; all residuals are
///    functions whose CFI lacks complete stack-height info);
///  * new FNs are only tail-call-only targets (paper: 161, harmless);
///  * full-accuracy binaries rise (864 → 1,222), full-coverage dips
///    slightly (1,346 → 1,334);
///  * ablation: CFI-recorded heights vs ANGR/DYNINST-style static
///    heights inside the merger (Table IV's motivation).

#include <iostream>

#include "analysis/pointer_scan.hpp"
#include "analysis/stack_height.hpp"
#include "bench/common.hpp"
#include "core/tail_call_merger.hpp"
#include "disasm/code_view.hpp"
#include "ehframe/eh_frame.hpp"

int main(int argc, char** argv) {
  using namespace fetch;
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_header("§V-C — Algorithm 1 evaluation + ablations",
                      "FDE false-positive repair by tail-call detection "
                      "and function merging");

  const eval::Corpus corpus = bench::self_built_corpus(opts);

  // --- Headline numbers: before/after Algorithm 1 ---------------------------
  const std::vector<eval::StrategyOutcome> stages = eval::run_matrix(
      corpus,
      {{"before", bench::run_fde_rec_xref}, {"after", bench::run_fetch}},
      opts.jobs);
  const eval::Aggregate& before = stages[0].total;
  const eval::Aggregate& after = stages[1].total;

  struct EntryResiduals {
    std::size_t incomplete = 0;
    std::size_t other = 0;
    std::size_t tail_only = 0;
    std::size_t new_other = 0;
  };
  const auto partials = util::parallel_map<EntryResiduals>(
      opts.effective_jobs(), corpus.size(), [&](std::size_t i) {
        const eval::CorpusEntry& entry = corpus.entries()[i];
        const auto pre = eval::evaluate_starts(
            bench::run_fde_rec_xref(entry), entry.bin.truth);
        const auto post =
            eval::evaluate_starts(bench::run_fetch(entry), entry.bin.truth);
        EntryResiduals p;
        for (const std::uint64_t fp : post.false_positives) {
          if (entry.bin.truth.incomplete_cfi_cold_parts.count(fp) != 0) {
            ++p.incomplete;
          } else {
            ++p.other;
          }
        }
        for (const std::uint64_t fn : post.false_negatives) {
          if (pre.false_negatives.count(fn) != 0) {
            continue;  // missed before Algorithm 1 too
          }
          if (entry.bin.truth.tail_only_single.count(fn) != 0) {
            ++p.tail_only;
          } else {
            ++p.new_other;
          }
        }
        return p;
      });
  std::size_t residual_incomplete = 0;
  std::size_t residual_other = 0;
  std::size_t new_fns_tail_only = 0;
  std::size_t new_fns_other = 0;
  for (const EntryResiduals& p : partials) {
    residual_incomplete += p.incomplete;
    residual_other += p.other;
    new_fns_tail_only += p.tail_only;
    new_fns_other += p.new_other;
  }

  eval::TextTable table({"Stage", "FullCov", "FullAcc", "FP", "FN"});
  bench::add_ladder_row(table, "before (FDE+Rec+Xref)", before);
  bench::add_ladder_row(table, "after  (Algorithm 1)", after);
  table.print(std::cout);

  std::cout << "\nFP reduction: " << before.fp_total << " -> "
            << after.fp_total << " ("
            << eval::fmt_pct(
                   static_cast<double>(before.fp_total - after.fp_total),
                   static_cast<double>(before.fp_total))
            << "% fixed)  [paper: 34,772 -> 2,659 = 92.4% fixed]\n";
  std::cout << "Residual FPs with incomplete CFI: " << residual_incomplete
            << ", other: " << residual_other
            << "  [paper: 2,656 of 2,659 incomplete-CFI]\n";
  std::cout << "New FNs that are tail-call-only targets: "
            << new_fns_tail_only << ", other: " << new_fns_other
            << "  [paper: 161, all tail-call-only]\n";

  // --- Ablation: static stack heights instead of CFI ------------------------
  // With static heights the merger also acts inside functions whose CFI
  // gives no verifiable height (the zone FETCH deliberately skips) and at
  // sites where the analysis disagrees with the CFI record. Both are
  // decisions resting on unreliable data — the risk Table IV quantifies.
  std::cout << "\nAblation — Algorithm 1 with static stack heights instead "
               "of CFI (DESIGN.md #1):\n";
  for (const bool dyninst_like : {true, false}) {
    struct AblationCounts {
      std::size_t merges = 0;
      std::size_t wrong_merges = 0;
      std::size_t unverifiable = 0;  // merged where CFI had no answer
      std::size_t site_disagreements = 0;
    };
    const auto per_entry = util::parallel_map<AblationCounts>(
        opts.effective_jobs(), corpus.size(), [&](std::size_t idx) {
      const eval::CorpusEntry& entry = corpus.entries()[idx];
      AblationCounts acc;
      const disasm::CodeView& code = entry.detector().code();
      const auto& eh = entry.detector().eh_frame();
      if (!eh) {
        return acc;
      }
      std::vector<std::uint64_t> seeds = eh->pc_begins();
      disasm::Options dopts;
      dopts.conditional_noreturn = entry.bin.truth.error_like;
      disasm::Result state = disasm::analyze(code, seeds, dopts);

      // Count jump sites where static and CFI heights disagree.
      const auto config = dyninst_like ? analysis::dyninst_like_config()
                                       : analysis::angr_like_config();
      for (const auto& [fn_entry, fn] : state.functions) {
        const eh::Fde* fde = eh->fde_covering(fn_entry);
        if (fde == nullptr || fde->pc_begin != fn_entry) {
          continue;
        }
        const auto table = eh::evaluate_cfi(eh->cie_for(*fde), *fde);
        if (!table || !table->complete_stack_height()) {
          continue;
        }
        const auto heights =
            analysis::analyze_stack_heights(code, fn, config);
        for (const disasm::FuncJump& j : fn.jumps) {
          const auto it = heights.find(j.site);
          const auto cfi_h = table->stack_height_at(j.site);
          if (it != heights.end() && it->second && cfi_h &&
              *it->second != *cfi_h) {
            ++acc.site_disagreements;
          }
        }
      }

      const auto data_refs = analysis::scan_data_pointers(entry.elf, state);
      std::set<std::uint64_t> fde_starts(seeds.begin(), seeds.end());
      core::MergeOptions mopts;
      mopts.use_cfi_heights = false;
      mopts.static_dyninst_like = dyninst_like;
      const core::MergeOutcome mo = core::merge_noncontiguous_functions(
          code, state, *eh, data_refs, fde_starts, mopts);
      for (const auto& [part, parent] : mo.merged) {
        ++acc.merges;
        if (entry.bin.truth.cold_parts.count(part) == 0 &&
            entry.bin.truth.tail_only_single.count(part) == 0) {
          ++acc.wrong_merges;
        }
        if (entry.bin.truth.incomplete_cfi_cold_parts.count(part) != 0) {
          ++acc.unverifiable;  // decided without a trustworthy height source
        }
      }
      return acc;
    });
    std::size_t merges = 0;
    std::size_t wrong_merges = 0;
    std::size_t unverifiable = 0;
    std::size_t site_disagreements = 0;
    for (const AblationCounts& acc : per_entry) {
      merges += acc.merges;
      wrong_merges += acc.wrong_merges;
      unverifiable += acc.unverifiable;
      site_disagreements += acc.site_disagreements;
    }
    std::cout << "  " << (dyninst_like ? "DYNINST" : "ANGR")
              << "-style heights: " << merges << " merges ("
              << wrong_merges << " destroy true functions, " << unverifiable
              << " rest on heights CFI cannot verify); "
              << site_disagreements
              << " jump sites disagree with the CFI record\n";
  }
  std::cout << "  FETCH's choice (CFI heights + skip-if-incomplete) makes "
               "every decision verifiable; the conservative reference "
               "criterion additionally contains the damage when heights "
               "are wrong (§V-B).\n";
  return 0;
}
