/// \file bench_fig5c_optimal_ladder.cpp
/// Regenerates Figure 5c (the optimal strategies) plus the §IV-E residual
/// analysis: FDE → FDE+Rec → FDE+Rec+Xref → FDE+Rec+Xref+Tcall(Algorithm 1),
/// then classifies what remains missed. Expected shape (paper, 1,352):
///   FDE               cov 1319 / acc 864
///   FDE+Rec           cov 1346 / acc 864
///   FDE+Rec+Xref      cov 1346 / acc 864   (154 new starts, 0 new FPs)
///   FDE+Rec+Xref+Tcall cov 1334 / acc 1222 (Algorithm 1 fixes FDE FPs)
/// Residual misses: unreachable assembly + tail-call-only targets.

#include <iostream>

#include "bench/common.hpp"
#include "core/pointer_detector.hpp"
#include "disasm/code_view.hpp"
#include "ehframe/eh_frame.hpp"

int main() {
  using namespace fetch;
  bench::print_header("Figure 5c — optimal strategies ladder + §IV-E",
                      "coverage/accuracy of the FETCH pipeline stages");

  const eval::Corpus corpus = eval::Corpus::self_built();
  eval::TextTable table(
      {"Strategy", "FullCov", "FullAcc", "FP-total", "FN-total"});

  bench::add_ladder_row(table, "FDE",
                        eval::run_strategy(corpus, bench::run_fde_only));
  bench::add_ladder_row(table, "FDE+Rec",
                        eval::run_strategy(corpus, bench::run_fde_rec));
  bench::add_ladder_row(table, "FDE+Rec+Xref",
                        eval::run_strategy(corpus, bench::run_fde_rec_xref));
  bench::add_ladder_row(table, "FDE+Rec+Xref+Tcall",
                        eval::run_strategy(corpus, bench::run_fetch));
  table.print(std::cout);

  // --- §IV-E detail: what Xref adds and what remains missed ----------------
  std::size_t xref_added = 0;
  std::size_t xref_fps = 0;
  std::size_t probed = 0;
  std::map<eval::MissKind, std::size_t> residual;
  for (const eval::CorpusEntry& entry : corpus.entries()) {
    core::FunctionDetector detector(entry.elf);
    core::DetectorOptions options = eval::fetch_options(entry.bin.truth);
    options.fix_fde_errors = false;
    const core::DetectionResult result = detector.run(options);
    for (const std::uint64_t p : result.pointer_starts) {
      ++xref_added;
      xref_fps += entry.bin.truth.starts.count(p) == 0 ? 1 : 0;
    }
    probed += result.pointer_starts.size();
    const auto e = eval::evaluate_starts(result.starts(), entry.bin.truth);
    for (const std::uint64_t fn : e.false_negatives) {
      ++residual[eval::classify_miss(fn, entry.bin.truth)];
    }
  }
  std::cout << "\n§IV-E — pointer detection over " << corpus.size()
            << " binaries:\n";
  std::cout << "  new function starts accepted: " << xref_added
            << "  [paper: 154]\n";
  std::cout << "  false positives introduced:   " << xref_fps
            << "  [paper: 0]\n";
  std::cout << "  residual misses by class:\n";
  for (const auto& [kind, count] : residual) {
    std::cout << "    " << eval::miss_kind_name(kind) << ": " << count
              << "\n";
  }
  std::cout << "  [paper: 160 unreachable assembly + 254 tail-call-only, "
               "both harmless]\n";

  // --- Ablation (DESIGN.md #3): sliding window vs aligned-only scan ---------
  std::size_t sliding_found = 0;
  std::size_t aligned_found = 0;
  for (const eval::CorpusEntry& entry : corpus.entries()) {
    for (const bool aligned_only : {false, true}) {
      disasm::CodeView code(entry.elf);
      const auto eh = eh::EhFrame::from_elf(entry.elf);
      if (!eh) {
        continue;
      }
      disasm::Options dopts;
      dopts.conditional_noreturn = entry.bin.truth.error_like;
      disasm::Result state = disasm::analyze(code, eh->pc_begins(), dopts);
      core::PointerDetectionOptions scan;
      scan.aligned_only = aligned_only;
      const auto pd = core::detect_pointer_functions(code, state, dopts, scan);
      (aligned_only ? aligned_found : sliding_found) += pd.accepted.size();
    }
  }
  std::cout << "\nAblation (DESIGN.md #3) — pointer-candidate scan:\n";
  std::cout << "  sliding 8-byte window (paper's superset): "
            << sliding_found << " starts found\n";
  std::cout << "  aligned-only slots:                       "
            << aligned_found << " starts found\n";
  std::cout << "  The sliding window finds every aligned hit plus pointers "
               "at unaligned offsets (packed structs, mid-struct fields).\n";
  return 0;
}
