/// \file bench_fig5c_optimal_ladder.cpp
/// Regenerates Figure 5c (the optimal strategies) plus the §IV-E residual
/// analysis: FDE → FDE+Rec → FDE+Rec+Xref → FDE+Rec+Xref+Tcall(Algorithm 1),
/// then classifies what remains missed. Expected shape (paper, 1,352):
///   FDE               cov 1319 / acc 864
///   FDE+Rec           cov 1346 / acc 864
///   FDE+Rec+Xref      cov 1346 / acc 864   (154 new starts, 0 new FPs)
///   FDE+Rec+Xref+Tcall cov 1334 / acc 1222 (Algorithm 1 fixes FDE FPs)
/// Residual misses: unreachable assembly + tail-call-only targets.

#include <iostream>

#include "bench/common.hpp"
#include "core/pointer_detector.hpp"
#include "disasm/code_view.hpp"
#include "ehframe/eh_frame.hpp"

int main(int argc, char** argv) {
  using namespace fetch;
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_header("Figure 5c — optimal strategies ladder + §IV-E",
                      "coverage/accuracy of the FETCH pipeline stages");

  const eval::Corpus corpus = bench::self_built_corpus(opts);
  eval::TextTable table(
      {"Strategy", "FullCov", "FullAcc", "FP-total", "FN-total"});

  const std::vector<eval::StrategySpec> ladder = {
      {"FDE", bench::run_fde_only},
      {"FDE+Rec", bench::run_fde_rec},
      {"FDE+Rec+Xref", bench::run_fde_rec_xref},
      {"FDE+Rec+Xref+Tcall", bench::run_fetch},
  };
  for (const eval::StrategyOutcome& out :
       eval::run_matrix(corpus, ladder, opts.jobs)) {
    bench::add_ladder_row(table, out.name, out.total);
  }
  table.print(std::cout);

  // --- §IV-E detail: what Xref adds and what remains missed ----------------
  // Per-entry partials filled concurrently, reduced serially in entry
  // order so the totals match a serial run exactly.
  struct XrefDetail {
    std::size_t added = 0;
    std::size_t fps = 0;
    std::map<eval::MissKind, std::size_t> residual;
  };
  const auto details = util::parallel_map<XrefDetail>(
      opts.effective_jobs(), corpus.size(), [&](std::size_t i) {
        const eval::CorpusEntry& entry = corpus.entries()[i];
        core::DetectorOptions options = eval::fetch_options(entry.bin.truth);
        options.fix_fde_errors = false;
        const core::DetectionResult result = entry.detector().run(options);
        XrefDetail d;
        for (const std::uint64_t p : result.pointer_starts) {
          ++d.added;
          d.fps += entry.bin.truth.starts.count(p) == 0 ? 1 : 0;
        }
        const auto e = eval::evaluate_starts(result.starts(), entry.bin.truth);
        for (const std::uint64_t fn : e.false_negatives) {
          ++d.residual[eval::classify_miss(fn, entry.bin.truth)];
        }
        return d;
      });
  std::size_t xref_added = 0;
  std::size_t xref_fps = 0;
  std::map<eval::MissKind, std::size_t> residual;
  for (const XrefDetail& d : details) {
    xref_added += d.added;
    xref_fps += d.fps;
    for (const auto& [kind, count] : d.residual) {
      residual[kind] += count;
    }
  }
  std::cout << "\n§IV-E — pointer detection over " << corpus.size()
            << " binaries:\n";
  std::cout << "  new function starts accepted: " << xref_added
            << "  [paper: 154]\n";
  std::cout << "  false positives introduced:   " << xref_fps
            << "  [paper: 0]\n";
  std::cout << "  residual misses by class:\n";
  for (const auto& [kind, count] : residual) {
    std::cout << "    " << eval::miss_kind_name(kind) << ": " << count
              << "\n";
  }
  std::cout << "  [paper: 160 unreachable assembly + 254 tail-call-only, "
               "both harmless]\n";

  // --- Ablation (DESIGN.md #3): sliding window vs aligned-only scan ---------
  struct ScanCounts {
    std::size_t sliding = 0;
    std::size_t aligned = 0;
  };
  const auto scans = util::parallel_map<ScanCounts>(
      opts.effective_jobs(), corpus.size(), [&](std::size_t i) {
        const eval::CorpusEntry& entry = corpus.entries()[i];
        ScanCounts counts;
        const auto& eh = entry.detector().eh_frame();
        if (!eh) {
          return counts;
        }
        const disasm::CodeView& code = entry.detector().code();
        for (const bool aligned_only : {false, true}) {
          disasm::Options dopts;
          dopts.conditional_noreturn = entry.bin.truth.error_like;
          disasm::Result state =
              disasm::analyze(code, eh->pc_begins(), dopts);
          core::PointerDetectionOptions scan;
          scan.aligned_only = aligned_only;
          const auto pd =
              core::detect_pointer_functions(code, state, dopts, scan);
          (aligned_only ? counts.aligned : counts.sliding) +=
              pd.accepted.size();
        }
        return counts;
      });
  std::size_t sliding_found = 0;
  std::size_t aligned_found = 0;
  for (const ScanCounts& s : scans) {
    sliding_found += s.sliding;
    aligned_found += s.aligned;
  }
  std::cout << "\nAblation (DESIGN.md #3) — pointer-candidate scan:\n";
  std::cout << "  sliding 8-byte window (paper's superset): "
            << sliding_found << " starts found\n";
  std::cout << "  aligned-only slots:                       "
            << aligned_found << " starts found\n";
  std::cout << "  The sliding window finds every aligned hit plus pointers "
               "at unaligned offsets (packed structs, mid-struct fields).\n";
  return 0;
}
