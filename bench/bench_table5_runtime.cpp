/// \file bench_table5_runtime.cpp
/// Regenerates Table V: average wall-clock analysis time per binary for
/// each tool. Absolute numbers differ wildly from the paper's testbed
/// (the emulations are all in-process C++); the comparable shape is
/// FETCH's cost being of the same order as the cheap tools.

#include <algorithm>
#include <chrono>
#include <iostream>

#include "baselines/tools.hpp"
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace fetch;
  using Clock = std::chrono::steady_clock;
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  const std::size_t jobs = opts.effective_jobs();
  bench::print_header("Table V — average analysis time per binary",
                      "milliseconds per binary over the full corpus");
  std::cout << "jobs: " << jobs << "\n\n";

  const eval::Corpus corpus = bench::self_built_corpus(opts);

  struct Row {
    std::string name;
    eval::Strategy strategy;
  };
  std::vector<Row> rows;
  for (const baselines::ToolSpec& tool : baselines::conventional_tools()) {
    rows.push_back({tool.name, [run = tool.run](const eval::CorpusEntry& e) {
                      return run(e.elf);
                    }});
  }
  rows.push_back({"GHIDRA", [](const eval::CorpusEntry& e) {
                    return baselines::ghidra_like(e.elf, {});
                  }});
  rows.push_back({"ANGR", [](const eval::CorpusEntry& e) {
                    return baselines::angr_like(e.elf, {});
                  }});
  rows.push_back({"FETCH", bench::run_fetch});

  // One persistent pool for all rows; each row's per-entry cells execute
  // concurrently while the wall clock runs, so the reported totals shrink
  // roughly linearly with --jobs. More workers than entries would only
  // add idle threads, so clamp.
  util::ThreadPool pool(std::min(jobs, corpus.size()));
  eval::TextTable table({"Tool", "avg ms/binary", "total s"});
  util::json::Value results = util::json::Value::array();
  const auto wall_start = Clock::now();
  for (const Row& row : rows) {
    const auto start = Clock::now();
    std::vector<std::size_t> sizes(corpus.size());
    util::parallel_for(pool, corpus.size(), [&](std::size_t i) {
      sizes[i] = row.strategy(corpus.entries()[i]).size();
    });
    const auto elapsed = Clock::now() - start;
    std::size_t sink = 0;
    for (const std::size_t s : sizes) {
      sink += s;
    }
    const double ms =
        std::chrono::duration<double, std::milli>(elapsed).count();
    // The JSON rows carry the exact strings printed in the table, so the
    // two renderings of one run are comparable value-for-value.
    const std::string avg_ms =
        eval::fmt(ms / static_cast<double>(corpus.size()), 3);
    const std::string total_s = eval::fmt(ms / 1000.0, 2);
    table.add_row({row.name, avg_ms, total_s});
    util::json::Value cell = util::json::Value::object();
    cell.set("tool", util::json::Value(row.name));
    cell.set("avg_ms_per_binary", util::json::Value::number(
                                      ms / static_cast<double>(corpus.size()),
                                      avg_ms));
    cell.set("total_s", util::json::Value::number(ms / 1000.0, total_s));
    results.add(std::move(cell));
    if (sink == 0) {
      std::cerr << "unexpected empty results\n";
    }
  }
  const double wall_s = std::chrono::duration<double>(
                            Clock::now() - wall_start).count();
  std::cerr << "wall clock, all tools: " << eval::fmt(wall_s, 2) << " s ("
            << jobs << " jobs)\n";
  table.print(std::cout);
  std::cout << "\n[paper, seconds/binary on their testbed: DYNINST 2.8, "
               "BAP 114.2, RADARE2 34.9, NUCLEUS 3.1, GHIDRA 40.4, ANGR "
               "78.5, IDA 10.3, NINJA 20.4, FETCH 3.3]\n";
  util::json::Value report = bench::json_report("bench_table5_runtime", opts);
  report.set("results", std::move(results));
  bench::write_json_report(opts, report);
  return 0;
}
