/// \file bench_table5_runtime.cpp
/// Regenerates Table V: average wall-clock analysis time per binary for
/// each tool. Absolute numbers differ wildly from the paper's testbed
/// (the emulations are all in-process C++); the comparable shape is
/// FETCH's cost being of the same order as the cheap tools.

#include <chrono>
#include <iostream>

#include "baselines/tools.hpp"
#include "bench/common.hpp"

int main() {
  using namespace fetch;
  using Clock = std::chrono::steady_clock;
  bench::print_header("Table V — average analysis time per binary",
                      "milliseconds per binary over the full corpus");

  const eval::Corpus corpus = eval::Corpus::self_built();

  struct Row {
    std::string name;
    eval::Strategy strategy;
  };
  std::vector<Row> rows;
  for (const baselines::ToolSpec& tool : baselines::conventional_tools()) {
    rows.push_back({tool.name, [run = tool.run](const eval::CorpusEntry& e) {
                      return run(e.elf);
                    }});
  }
  rows.push_back({"GHIDRA", [](const eval::CorpusEntry& e) {
                    return baselines::ghidra_like(e.elf, {});
                  }});
  rows.push_back({"ANGR", [](const eval::CorpusEntry& e) {
                    return baselines::angr_like(e.elf, {});
                  }});
  rows.push_back({"FETCH", bench::run_fetch});

  eval::TextTable table({"Tool", "avg ms/binary", "total s"});
  for (const Row& row : rows) {
    const auto start = Clock::now();
    std::size_t sink = 0;
    for (const eval::CorpusEntry& entry : corpus.entries()) {
      sink += row.strategy(entry).size();
    }
    const auto elapsed = Clock::now() - start;
    const double ms =
        std::chrono::duration<double, std::milli>(elapsed).count();
    table.add_row({row.name,
                   eval::fmt(ms / static_cast<double>(corpus.size()), 3),
                   eval::fmt(ms / 1000.0, 2)});
    if (sink == 0) {
      std::cerr << "unexpected empty results\n";
    }
  }
  table.print(std::cout);
  std::cout << "\n[paper, seconds/binary on their testbed: DYNINST 2.8, "
               "BAP 114.2, RADARE2 34.9, NUCLEUS 3.1, GHIDRA 40.4, ANGR "
               "78.5, IDA 10.3, NINJA 20.4, FETCH 3.3]\n";
  return 0;
}
