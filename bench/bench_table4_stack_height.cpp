/// \file bench_table4_stack_height.cpp
/// Regenerates Table IV: precision and recall of ANGR-style and
/// DYNINST-style static stack-height analyses against the CFI-recorded
/// heights, over functions whose CFI provides complete height info —
/// both for all code locations ("Full") and jump sites only ("Jump").
/// Expected shape: high but imperfect precision/recall for both tools
/// (paper avgs: ANGR 94.07/97.71 full, 98.72/96.40 jump; DYNINST
/// 94.81/98.27 full, 98.67/99.35 jump), motivating FETCH's use of CFI.

#include <iostream>

#include "analysis/stack_height.hpp"
#include "bench/common.hpp"
#include "disasm/code_view.hpp"
#include "ehframe/cfi_eval.hpp"
#include "ehframe/eh_frame.hpp"

namespace {

struct PrCounts {
  std::size_t reported = 0;  // locations where the tool reports a height
  std::size_t correct = 0;   // ... and it matches CFI
  std::size_t baseline = 0;  // locations where CFI has a height

  [[nodiscard]] double precision() const {
    return reported == 0 ? 0
                         : 100.0 * static_cast<double>(correct) /
                               static_cast<double>(reported);
  }
  [[nodiscard]] double recall() const {
    return baseline == 0 ? 0
                         : 100.0 * static_cast<double>(correct) /
                               static_cast<double>(baseline);
  }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace fetch;
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_header("Table IV — static stack-height analyses vs CFI",
                      "precision/recall per optimization level, Full and "
                      "Jump-site views");

  const eval::Corpus corpus = bench::self_built_corpus(opts);

  // counts[tool][opt][view]; per-entry partials are tallied concurrently
  // and merged serially in entry order below.
  using CountMap =
      std::map<std::string, std::map<std::string, std::map<std::string, PrCounts>>>;
  CountMap counts;

  const auto partials = util::parallel_map<CountMap>(
      opts.effective_jobs(), corpus.size(), [&](std::size_t idx) {
    const eval::CorpusEntry& entry = corpus.entries()[idx];
    CountMap my_counts;
    const disasm::CodeView& code = entry.detector().code();
    const auto& eh = entry.detector().eh_frame();
    if (!eh) {
      return my_counts;
    }
    disasm::Options dopts;
    dopts.conditional_noreturn = entry.bin.truth.error_like;
    const disasm::Result result =
        disasm::analyze(code, eh->pc_begins(), dopts);
    const auto pops = analysis::compute_callee_pops(code, result);

    for (const auto& [fn_entry, fn] : result.functions) {
      const eh::Fde* fde = eh->fde_covering(fn_entry);
      if (fde == nullptr || fde->pc_begin != fn_entry) {
        continue;
      }
      const auto table = eh::evaluate_cfi(eh->cie_for(*fde), *fde);
      if (!table || !table->complete_stack_height()) {
        continue;  // paper: only functions with complete CFI info
      }
      std::set<std::uint64_t> jump_sites;
      for (const disasm::FuncJump& j : fn.jumps) {
        jump_sites.insert(j.site);
      }

      for (const auto& [tool, config] :
           {std::pair{"ANGR", analysis::angr_like_config()},
            std::pair{"DYNINST", analysis::dyninst_like_config()}}) {
        const analysis::HeightMap heights =
            analysis::analyze_stack_heights(code, fn, config);
        for (const auto& [addr, h] : heights) {
          if (addr >= fde->pc_end()) {
            continue;
          }
          const auto cfi_h = table->stack_height_at(addr);
          if (!cfi_h) {
            continue;
          }
          auto tally = [&](const char* view) {
            PrCounts& c = my_counts[tool][entry.bin.opt][view];
            ++c.baseline;
            if (h.has_value()) {
              ++c.reported;
              c.correct += (*h == *cfi_h) ? 1 : 0;
            }
          };
          tally("Full");
          if (jump_sites.count(addr) != 0) {
            tally("Jump");
          }
        }
      }
    }
    return my_counts;
  });
  for (const CountMap& partial : partials) {
    for (const auto& [tool, by_opt] : partial) {
      for (const auto& [opt, by_view] : by_opt) {
        for (const auto& [view, c] : by_view) {
          PrCounts& total = counts[tool][opt][view];
          total.reported += c.reported;
          total.correct += c.correct;
          total.baseline += c.baseline;
        }
      }
    }
  }

  eval::TextTable table({"OPT", "Tool", "View", "Pre", "Rec"});
  for (const std::string opt : {"O2", "O3", "Os", "Ofast"}) {
    for (const std::string tool : {"ANGR", "DYNINST"}) {
      for (const std::string view : {"Full", "Jump"}) {
        const PrCounts& c = counts[tool][opt][view];
        table.add_row({opt, tool, view, eval::fmt(c.precision(), 2),
                       eval::fmt(c.recall(), 2)});
      }
    }
  }
  table.print(std::cout);
  std::cout << "\nExpected shape: both analyses below 100% on either "
               "precision or recall in every setting — CFI-recorded "
               "heights are the only loss-free source (FETCH's §V-B "
               "choice).\n";
  return 0;
}
