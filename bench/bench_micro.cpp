/// \file bench_micro.cpp
/// Engineering micro-benchmarks: throughput of the substrates every
/// experiment leans on — instruction decoding, eh_frame parsing, CFI
/// evaluation, corpus generation, and the full FETCH pipeline per binary.
/// Not a paper artifact; regressions here inflate every other bench.
///
/// Two halves:
///   1. google-benchmark cases on one sample binary (quick signal while
///      iterating on the decoder or the detector).
///   2. A deterministic self-timed "hot path" report over the corpus at
///      the selected --scale: decode throughput, cold-vs-warm insn_at
///      cost for the lock-free dense cache vs the old mutex+unordered_map
///      memo (kept here as a baseline replica), sharded predecode, and
///      the cache hit rate. `--json PATH` writes the same rows as a
///      fetch-bench-v1 document — the checked-in BENCH_hotpath.json
///      baseline is produced by this half.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "bench/common.hpp"
#include "core/detector.hpp"
#include "disasm/code_view.hpp"
#include "ehframe/cfi_eval.hpp"
#include "ehframe/eh_frame.hpp"
#include "elf/elf_file.hpp"
#include "eval/runner.hpp"
#include "synth/codegen.hpp"
#include "synth/corpus.hpp"
#include "util/thread_pool.hpp"
#include "x86/decoder.hpp"

namespace {

using namespace fetch;
using Clock = std::chrono::steady_clock;

/// The pre-refactor CodeView memo, verbatim: one global mutex taken twice
/// per lookup around an unordered_map probe, values returned by copy.
/// Kept only as the measurement baseline for the dense-cache speedup.
class MutexMapCodeView {
 public:
  explicit MutexMapCodeView(const elf::ElfFile& elf) : elf_(elf) {}

  [[nodiscard]] std::optional<x86::Insn> insn_at(std::uint64_t addr) const {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      const auto it = cache_.find(addr);
      if (it != cache_.end()) {
        return it->second;
      }
    }
    std::optional<x86::Insn> result;
    const elf::Section* sec = elf_.section_at(addr);
    if (sec != nullptr && sec->executable()) {
      const std::uint64_t avail = sec->addr + sec->size - addr;
      const auto bytes =
          elf_.bytes_at(addr, std::min<std::uint64_t>(avail, 15));
      if (bytes) {
        result = x86::decode(*bytes, addr);
      }
    }
    const std::lock_guard<std::mutex> lock(mu_);
    cache_.emplace(addr, result);
    return result;
  }

 private:
  const elf::ElfFile& elf_;
  mutable std::mutex mu_;
  mutable std::unordered_map<std::uint64_t, std::optional<x86::Insn>> cache_;
};

const synth::SynthBinary& sample_binary() {
  static const synth::SynthBinary bin = synth::generate(synth::make_program(
      synth::projects()[0], synth::profile_for("gcc", "O2"), 4242));
  return bin;
}

/// Executable-section byte ranges of an ELF, for linear walks.
std::vector<std::pair<std::uint64_t, std::uint64_t>> code_ranges(
    const elf::ElfFile& elf) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
  for (const elf::Section& sec : elf.sections()) {
    if (sec.executable() && sec.alloc() && sec.size != 0) {
      out.emplace_back(sec.addr, sec.addr + sec.size);
    }
  }
  return out;
}

// --- google-benchmark half -------------------------------------------------

void BM_DecodeText(benchmark::State& state) {
  const elf::ElfFile elf(sample_binary().image);
  const elf::Section* text = elf.section(".text");
  const auto bytes = elf.section_bytes(*text);
  for (auto _ : state) {
    std::size_t off = 0;
    std::size_t count = 0;
    while (off < bytes.size()) {
      const auto insn =
          x86::decode(bytes.subspan(off), text->addr + off);
      off += insn ? insn->length : 1;
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_DecodeText);

void BM_InsnAtWarmDense(benchmark::State& state) {
  const elf::ElfFile elf(sample_binary().image);
  const disasm::CodeView code(elf);
  code.predecode(1);
  const elf::Section* text = elf.section(".text");
  std::vector<std::uint64_t> starts;
  for (std::uint64_t a = text->addr; a < text->addr + text->size;) {
    const x86::Insn* insn = code.insn_at(a);
    if (insn == nullptr) {
      ++a;
      continue;
    }
    starts.push_back(a);
    a += insn->length;
  }
  for (auto _ : state) {
    std::uint64_t sink = 0;
    for (const std::uint64_t a : starts) {
      sink += code.insn_at(a)->length;
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(starts.size()));
}
BENCHMARK(BM_InsnAtWarmDense);

void BM_InsnAtWarmMutexMap(benchmark::State& state) {
  const elf::ElfFile elf(sample_binary().image);
  const MutexMapCodeView code(elf);
  const elf::Section* text = elf.section(".text");
  std::vector<std::uint64_t> starts;
  for (std::uint64_t a = text->addr; a < text->addr + text->size;) {
    const auto insn = code.insn_at(a);
    if (!insn) {
      ++a;
      continue;
    }
    starts.push_back(a);
    a += insn->length;
  }
  for (auto _ : state) {
    std::uint64_t sink = 0;
    for (const std::uint64_t a : starts) {
      sink += code.insn_at(a)->length;
    }
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(starts.size()));
}
BENCHMARK(BM_InsnAtWarmMutexMap);

void BM_PredecodeSharded(benchmark::State& state) {
  const elf::ElfFile elf(sample_binary().image);
  for (auto _ : state) {
    const disasm::CodeView code(elf);
    code.predecode(2);
    benchmark::DoNotOptimize(code.decoded_records());
  }
}
BENCHMARK(BM_PredecodeSharded);

void BM_ParseElf(benchmark::State& state) {
  const auto& image = sample_binary().image;
  for (auto _ : state) {
    elf::ElfFile elf(image);
    benchmark::DoNotOptimize(elf.sections().size());
  }
}
BENCHMARK(BM_ParseElf);

void BM_ParseEhFrame(benchmark::State& state) {
  const elf::ElfFile elf(sample_binary().image);
  const elf::Section* sec = elf.section(".eh_frame");
  const auto bytes = elf.section_bytes(*sec);
  for (auto _ : state) {
    const auto eh = eh::EhFrame::parse(bytes, sec->addr);
    benchmark::DoNotOptimize(eh.fdes().size());
  }
}
BENCHMARK(BM_ParseEhFrame);

void BM_EvaluateAllCfi(benchmark::State& state) {
  const elf::ElfFile elf(sample_binary().image);
  const auto eh = *eh::EhFrame::from_elf(elf);
  for (auto _ : state) {
    std::size_t complete = 0;
    for (const eh::Fde& fde : eh.fdes()) {
      const auto table = eh::evaluate_cfi(eh.cie_for(fde), fde);
      complete += table && table->complete_stack_height() ? 1 : 0;
    }
    benchmark::DoNotOptimize(complete);
  }
}
BENCHMARK(BM_EvaluateAllCfi);

void BM_GenerateBinary(benchmark::State& state) {
  const auto spec = synth::make_program(
      synth::projects()[0], synth::profile_for("gcc", "O2"), 4242);
  for (auto _ : state) {
    const synth::SynthBinary bin = synth::generate(spec);
    benchmark::DoNotOptimize(bin.image.size());
  }
}
BENCHMARK(BM_GenerateBinary);

void BM_FetchPipeline(benchmark::State& state) {
  const synth::SynthBinary& bin = sample_binary();
  const elf::ElfFile elf(bin.image);
  for (auto _ : state) {
    core::FunctionDetector detector(elf);
    const auto result = detector.run(eval::fetch_options(bin.truth));
    benchmark::DoNotOptimize(result.functions.size());
  }
}
BENCHMARK(BM_FetchPipeline);

// --- self-timed hot-path report --------------------------------------------

struct HotPathTotals {
  double cold_dense_ns = 0;
  double cold_map_ns = 0;
  double warm_dense_ns = 0;
  double warm_map_ns = 0;
  double predecode_ns = 0;
  std::uint64_t cold_calls = 0;   // insn_at calls during the cold walks
  std::uint64_t warm_calls = 0;   // per implementation
  std::uint64_t code_bytes = 0;   // executable bytes walked (per cold pass)
  std::uint64_t dense_calls = 0;  // all dense insn_at calls (cold + warm)
  std::uint64_t dense_misses = 0;  // slots actually decoded or invalidated
  std::uint64_t predecode_records = 0;
};

double elapsed_ns(Clock::time_point start) {
  return std::chrono::duration<double, std::nano>(Clock::now() - start)
      .count();
}

/// Cold + warm measurement of one corpus entry against both cache
/// implementations. \p warm_passes controls how long the warm loops run.
void measure_entry(const elf::ElfFile& elf, std::size_t warm_passes,
                   std::size_t jobs, HotPathTotals& totals) {
  const auto ranges = code_ranges(elf);
  std::vector<std::uint64_t> starts;

  // Cold, dense: construction + full linear decode of every section.
  {
    const auto t0 = Clock::now();
    const disasm::CodeView code(elf);
    std::uint64_t calls = 0;
    for (const auto& [lo, hi] : ranges) {
      std::uint64_t a = lo;
      while (a < hi) {
        const x86::Insn* insn = code.insn_at(a);
        ++calls;
        if (insn == nullptr) {
          ++a;
          continue;
        }
        starts.push_back(a);
        a += insn->length;
      }
    }
    totals.cold_dense_ns += elapsed_ns(t0);
    totals.cold_calls += calls;
    for (const auto& [lo, hi] : ranges) {
      totals.code_bytes += hi - lo;
    }
  }

  // Cold, mutex+map baseline: identical walk.
  {
    const auto t0 = Clock::now();
    const MutexMapCodeView code(elf);
    std::uint64_t sink = 0;
    for (const auto& [lo, hi] : ranges) {
      std::uint64_t a = lo;
      while (a < hi) {
        const auto insn = code.insn_at(a);
        a += insn ? insn->length : 1;
        ++sink;
      }
    }
    benchmark::DoNotOptimize(sink);
    totals.cold_map_ns += elapsed_ns(t0);
  }

  // Warm loops: every known instruction start, repeatedly. The dense view
  // also yields the cache-hit accounting (misses = slots that needed a
  // decode; everything else was a wait-free hit).
  {
    const disasm::CodeView code(elf);
    // Warm the view with a counted linear walk so every insn_at call made
    // against it is in the hit-rate denominator.
    std::uint64_t calls = 0;
    for (const auto& [lo, hi] : ranges) {
      std::uint64_t a = lo;
      while (a < hi) {
        const x86::Insn* insn = code.insn_at(a);
        ++calls;
        a += insn != nullptr ? insn->length : 1;
      }
    }
    const auto t0 = Clock::now();
    for (std::size_t pass = 0; pass < warm_passes; ++pass) {
      std::uint64_t sink = 0;
      for (const std::uint64_t a : starts) {
        sink += code.insn_at(a)->length;
      }
      benchmark::DoNotOptimize(sink);
      calls += starts.size();
    }
    totals.warm_dense_ns += elapsed_ns(t0);
    totals.warm_calls +=
        static_cast<std::uint64_t>(warm_passes) * starts.size();
    const auto stats = code.cache_stats();
    totals.dense_calls += calls;
    totals.dense_misses += stats.decoded + stats.invalid;
  }
  {
    const MutexMapCodeView code(elf);
    for (const std::uint64_t a : starts) {  // warm the map once
      benchmark::DoNotOptimize(code.insn_at(a));
    }
    const auto t0 = Clock::now();
    for (std::size_t pass = 0; pass < warm_passes; ++pass) {
      std::uint64_t sink = 0;
      for (const std::uint64_t a : starts) {
        sink += code.insn_at(a)->length;
      }
      benchmark::DoNotOptimize(sink);
    }
    totals.warm_map_ns += elapsed_ns(t0);
  }

  // Sharded eager predecode on a fresh view.
  {
    const disasm::CodeView code(elf);
    const auto t0 = Clock::now();
    code.predecode(jobs);
    totals.predecode_ns += elapsed_ns(t0);
    totals.predecode_records += code.decoded_records();
  }
}

void run_hotpath_report(const bench::BenchOptions& opts) {
  const std::size_t warm_passes =
      opts.scale == synth::Scale::kSmoke ? 3 : 8;
  const eval::Corpus corpus = bench::self_built_corpus(opts);

  HotPathTotals totals;
  for (const eval::CorpusEntry& entry : corpus.entries()) {
    measure_entry(entry.elf, warm_passes, opts.effective_jobs(), totals);
  }

  const double warm_dense =
      totals.warm_dense_ns / static_cast<double>(totals.warm_calls);
  const double warm_map =
      totals.warm_map_ns / static_cast<double>(totals.warm_calls);
  const double cold_dense =
      totals.cold_dense_ns / static_cast<double>(totals.cold_calls);
  const double cold_map =
      totals.cold_map_ns / static_cast<double>(totals.cold_calls);
  const double throughput_mib_s =
      static_cast<double>(totals.code_bytes) /
      (totals.cold_dense_ns / 1e9) / (1024.0 * 1024.0);
  const double hit_rate =
      1.0 - static_cast<double>(totals.dense_misses) /
                static_cast<double>(totals.dense_calls);
  const double predecode_ms = totals.predecode_ns / 1e6;

  struct Row {
    const char* name;
    std::string value;
    double raw;
    const char* unit;
  };
  const std::vector<Row> rows = {
      {"insn_at_warm_dense", eval::fmt(warm_dense, 2), warm_dense, "ns/op"},
      {"insn_at_warm_mutex_map", eval::fmt(warm_map, 2), warm_map, "ns/op"},
      {"warm_speedup_vs_mutex_map", eval::fmt(warm_map / warm_dense, 2),
       warm_map / warm_dense, "x"},
      {"insn_at_cold_dense", eval::fmt(cold_dense, 2), cold_dense, "ns/op"},
      {"insn_at_cold_mutex_map", eval::fmt(cold_map, 2), cold_map, "ns/op"},
      {"cold_speedup_vs_mutex_map", eval::fmt(cold_map / cold_dense, 2),
       cold_map / cold_dense, "x"},
      {"decode_throughput", eval::fmt(throughput_mib_s, 1), throughput_mib_s,
       "MiB/s"},
      {"predecode_total", eval::fmt(predecode_ms, 2), predecode_ms, "ms"},
      {"cache_hit_rate", eval::fmt(hit_rate, 4), hit_rate, "ratio"},
  };

  std::cout << "\n=== hot path report (" << synth::scale_name(opts.scale)
            << " corpus, " << corpus.size() << " entries, " << warm_passes
            << " warm passes) ===\n";
  eval::TextTable table({"Metric", "Value", "Unit"});
  util::json::Value results = util::json::Value::array();
  for (const Row& row : rows) {
    table.add_row({row.name, row.value, row.unit});
    util::json::Value cell = util::json::Value::object();
    cell.set("name", util::json::Value(row.name));
    cell.set("value", util::json::Value::number(row.raw, row.value));
    cell.set("unit", util::json::Value(row.unit));
    results.add(std::move(cell));
  }
  table.print(std::cout);

  util::json::Value report = bench::json_report("bench_micro", opts);
  report.set("entries",
             util::json::Value::number(
                 static_cast<std::uint64_t>(corpus.size())));
  report.set("warm_passes", util::json::Value::number(
                                static_cast<std::uint64_t>(warm_passes)));
  report.set("results", std::move(results));
  bench::write_json_report(opts, report);
}

}  // namespace

/// Custom main instead of BENCHMARK_MAIN(): the shared bench::parse_args
/// handles the harness-wide flags (ctest passes --smoke --jobs to every
/// bench) and collects everything it does not recognize for
/// google-benchmark. Smoke scale shrinks both halves so the smoke test is
/// a compile-and-run check, not a measurement.
int main(int argc, char** argv) {
  std::vector<char*> args = {argv[0]};
  const bench::BenchOptions options = bench::parse_args(argc, argv, &args);
  if (options.predecode) {
    // The hot-path report constructs its own cold and warm views; a
    // pre-warmed corpus would burn work without moving any number.
    std::fprintf(stderr,
                 "%s: --predecode has no effect on the hot-path report; "
                 "cold and warm paths are measured explicitly\n",
                 argv[0]);
    return 2;
  }

  std::string min_time = "--benchmark_min_time=0.01";
  if (options.scale == fetch::synth::Scale::kSmoke) {
    args.push_back(min_time.data());
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  if (filtered_argc > 1) {
    // Neither a harness flag (parse_args) nor a gbench flag (Initialize).
    std::fprintf(stderr, "%s: unrecognized argument: %s\n", argv[0],
                 args[1]);
    return 2;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();

  run_hotpath_report(options);
  return 0;
}
