/// \file bench_micro.cpp
/// Engineering micro-benchmarks (google-benchmark): throughput of the
/// substrates every experiment leans on — instruction decoding, eh_frame
/// parsing, CFI evaluation, corpus generation, and the full FETCH
/// pipeline per binary. Not a paper artifact; regressions here inflate
/// every other bench.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include "core/detector.hpp"
#include "util/thread_pool.hpp"
#include "disasm/code_view.hpp"
#include "ehframe/cfi_eval.hpp"
#include "ehframe/eh_frame.hpp"
#include "elf/elf_file.hpp"
#include "eval/runner.hpp"
#include "synth/codegen.hpp"
#include "synth/corpus.hpp"
#include "x86/decoder.hpp"

namespace {

using namespace fetch;

const synth::SynthBinary& sample_binary() {
  static const synth::SynthBinary bin = synth::generate(synth::make_program(
      synth::projects()[0], synth::profile_for("gcc", "O2"), 4242));
  return bin;
}

void BM_DecodeText(benchmark::State& state) {
  const elf::ElfFile elf(sample_binary().image);
  const elf::Section* text = elf.section(".text");
  const auto bytes = elf.section_bytes(*text);
  for (auto _ : state) {
    std::size_t off = 0;
    std::size_t count = 0;
    while (off < bytes.size()) {
      const auto insn =
          x86::decode(bytes.subspan(off), text->addr + off);
      off += insn ? insn->length : 1;
      ++count;
    }
    benchmark::DoNotOptimize(count);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes.size()));
}
BENCHMARK(BM_DecodeText);

void BM_ParseElf(benchmark::State& state) {
  const auto& image = sample_binary().image;
  for (auto _ : state) {
    elf::ElfFile elf(image);
    benchmark::DoNotOptimize(elf.sections().size());
  }
}
BENCHMARK(BM_ParseElf);

void BM_ParseEhFrame(benchmark::State& state) {
  const elf::ElfFile elf(sample_binary().image);
  const elf::Section* sec = elf.section(".eh_frame");
  const auto bytes = elf.section_bytes(*sec);
  for (auto _ : state) {
    const auto eh = eh::EhFrame::parse(bytes, sec->addr);
    benchmark::DoNotOptimize(eh.fdes().size());
  }
}
BENCHMARK(BM_ParseEhFrame);

void BM_EvaluateAllCfi(benchmark::State& state) {
  const elf::ElfFile elf(sample_binary().image);
  const auto eh = *eh::EhFrame::from_elf(elf);
  for (auto _ : state) {
    std::size_t complete = 0;
    for (const eh::Fde& fde : eh.fdes()) {
      const auto table = eh::evaluate_cfi(eh.cie_for(fde), fde);
      complete += table && table->complete_stack_height() ? 1 : 0;
    }
    benchmark::DoNotOptimize(complete);
  }
}
BENCHMARK(BM_EvaluateAllCfi);

void BM_GenerateBinary(benchmark::State& state) {
  const auto spec = synth::make_program(
      synth::projects()[0], synth::profile_for("gcc", "O2"), 4242);
  for (auto _ : state) {
    const synth::SynthBinary bin = synth::generate(spec);
    benchmark::DoNotOptimize(bin.image.size());
  }
}
BENCHMARK(BM_GenerateBinary);

void BM_FetchPipeline(benchmark::State& state) {
  const synth::SynthBinary& bin = sample_binary();
  const elf::ElfFile elf(bin.image);
  for (auto _ : state) {
    core::FunctionDetector detector(elf);
    const auto result = detector.run(eval::fetch_options(bin.truth));
    benchmark::DoNotOptimize(result.functions.size());
  }
}
BENCHMARK(BM_FetchPipeline);

}  // namespace

/// Custom main instead of BENCHMARK_MAIN(): accepts the harness-wide
/// --smoke/--jobs flags (ctest passes them to every bench) before handing
/// the remaining arguments to google-benchmark. --smoke shrinks the
/// measurement time so the smoke test is a compile-and-run check, not a
/// measurement.
int main(int argc, char** argv) {
  std::vector<char*> args = {argv[0]};
  bool smoke = false;
  // The micro benchmarks are single-threaded, so --jobs is validated and
  // then ignored.
  std::size_t ignored_jobs = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--jobs" && i + 1 < argc) {
      if (!fetch::util::parse_jobs(argv[++i], &ignored_jobs)) {
        std::fprintf(stderr, "usage: %s [--smoke] [--jobs N]\n", argv[0]);
        return 2;
      }
    } else if (arg.rfind("--jobs=", 0) == 0) {
      if (!fetch::util::parse_jobs(arg.substr(7), &ignored_jobs)) {
        std::fprintf(stderr, "usage: %s [--smoke] [--jobs N]\n", argv[0]);
        return 2;
      }
    } else {
      args.push_back(argv[i]);
    }
  }
  std::string min_time = "--benchmark_min_time=0.01";
  if (smoke) {
    args.push_back(min_time.data());
  }
  int filtered_argc = static_cast<int>(args.size());
  benchmark::Initialize(&filtered_argc, args.data());
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
