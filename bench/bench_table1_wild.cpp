/// \file bench_table1_wild.cpp
/// Regenerates Table I: the wild-binary inventory — does the binary carry
/// .eh_frame, does it carry symbols, and what fraction of the function
/// symbols is covered by FDE PC Begins (the paper reports 99.99-100%).

#include <iostream>

#include "bench/common.hpp"
#include "ehframe/eh_frame.hpp"

int main(int argc, char** argv) {
  using namespace fetch;
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_header("Table I — wild binaries",
                      "EHF/Sym presence and FDE-vs-symbol coverage ratio "
                      "(paper: avg 99.99)");

  const eval::Corpus wild = bench::wild_corpus(opts);
  eval::TextTable table({"Software", "Lang", "EHF", "Sym", "FDE%"});

  double ratio_sum = 0;
  std::size_t rated = 0;
  for (const eval::CorpusEntry& entry : wild.entries()) {
    const auto eh = eh::EhFrame::from_elf(entry.elf);
    const bool has_sym = entry.elf.has_symtab();
    std::string fde_pct = "-";
    if (eh && has_sym) {
      std::set<std::uint64_t> fde_starts;
      for (const std::uint64_t pc : eh->pc_begins()) {
        fde_starts.insert(pc);
      }
      std::size_t covered = 0;
      std::size_t total = 0;
      for (const elf::Symbol& sym : entry.elf.symbols()) {
        if (sym.is_function()) {
          ++total;
          covered += fde_starts.count(sym.value);
        }
      }
      if (total > 0) {
        const double pct = 100.0 * static_cast<double>(covered) /
                           static_cast<double>(total);
        fde_pct = eval::fmt(pct, 2);
        ratio_sum += pct;
        ++rated;
      }
    }
    // Language tag comes from the wild profile definitions.
    std::string lang = "C";
    for (const synth::WildDef& def : synth::wild_defs()) {
      if (def.name == entry.bin.name) {
        lang = def.lang;
      }
    }
    table.add_row({entry.bin.name, lang, eh ? "yes" : "no",
                   has_sym ? "yes" : "no", fde_pct});
  }
  table.print(std::cout);
  if (rated > 0) {
    std::cout << "\nAvg FDE coverage of symbols: "
              << eval::fmt(ratio_sum / static_cast<double>(rated), 2)
              << "%  (paper: 99.99%)\n";
  }
  return 0;
}
