/// \file bench_fig5b_angr_ladder.cpp
/// Regenerates Figure 5b: the ANGR strategy ladder. Expected shape
/// (paper, 1,343 bins):
///   FDE             cov 1310 / acc 864
///   FDE+Rec+Fmerg   cov 1303           (function merging hurts coverage)
///   FDE+Rec         cov 1337 / acc 845
///   FDE+Rec+Fsig    cov 1337 / acc 13  (FP explosion)
///   FDE+Rec+Tcall   cov 1337 / acc 697
///   FDE+Rec+Scan    cov 1337 / acc 0   (linear scan kills all accuracy)

#include <iostream>

#include "baselines/tools.hpp"
#include "bench/common.hpp"

int main() {
  using namespace fetch;
  bench::print_header("Figure 5b — ANGR strategy ladder",
                      "full-coverage / full-accuracy binary counts per "
                      "strategy combination");

  const eval::Corpus corpus = eval::Corpus::self_built();
  eval::TextTable table(
      {"Strategy", "FullCov", "FullAcc", "FP-total", "FN-total"});

  auto run_angr = [&corpus](const baselines::AngrOptions& options) {
    return eval::run_strategy(
        corpus, [&options](const eval::CorpusEntry& entry) {
          return baselines::angr_like(entry.elf, options);
        });
  };

  bench::add_ladder_row(table, "FDE",
                        eval::run_strategy(corpus, bench::run_fde_only));

  baselines::AngrOptions with_fmerge;  // ANGR defaults: Fmerg on
  bench::add_ladder_row(table, "FDE+Rec+Fmerg", run_angr(with_fmerge));

  baselines::AngrOptions base;
  base.fmerge = false;
  bench::add_ladder_row(table, "FDE+Rec", run_angr(base));

  baselines::AngrOptions fsig = base;
  fsig.fsig = true;
  bench::add_ladder_row(table, "FDE+Rec+Fsig", run_angr(fsig));

  baselines::AngrOptions tcall = base;
  tcall.tcall = true;
  bench::add_ladder_row(table, "FDE+Rec+Tcall", run_angr(tcall));

  baselines::AngrOptions scan = base;
  scan.scan = true;
  bench::add_ladder_row(table, "FDE+Rec+Scan", run_angr(scan));

  table.print(std::cout);
  std::cout << "\nExpected shape: Fmerg reduces coverage; Fsig/Tcall/Scan "
               "add no meaningful coverage but pile up false positives "
               "(Scan worst).\n";
  return 0;
}
