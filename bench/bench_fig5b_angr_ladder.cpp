/// \file bench_fig5b_angr_ladder.cpp
/// Regenerates Figure 5b: the ANGR strategy ladder. Expected shape
/// (paper, 1,343 bins):
///   FDE             cov 1310 / acc 864
///   FDE+Rec+Fmerg   cov 1303           (function merging hurts coverage)
///   FDE+Rec         cov 1337 / acc 845
///   FDE+Rec+Fsig    cov 1337 / acc 13  (FP explosion)
///   FDE+Rec+Tcall   cov 1337 / acc 697
///   FDE+Rec+Scan    cov 1337 / acc 0   (linear scan kills all accuracy)

#include <iostream>

#include "baselines/tools.hpp"
#include "bench/common.hpp"

int main(int argc, char** argv) {
  using namespace fetch;
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_header("Figure 5b — ANGR strategy ladder",
                      "full-coverage / full-accuracy binary counts per "
                      "strategy combination");

  const eval::Corpus corpus = bench::self_built_corpus(opts);
  eval::TextTable table(
      {"Strategy", "FullCov", "FullAcc", "FP-total", "FN-total"});

  auto angr_with = [](const baselines::AngrOptions& options) {
    return [options](const eval::CorpusEntry& entry) {
      return baselines::angr_like(entry.elf, options);
    };
  };

  baselines::AngrOptions with_fmerge;  // ANGR defaults: Fmerg on
  baselines::AngrOptions base;
  base.fmerge = false;
  baselines::AngrOptions fsig = base;
  fsig.fsig = true;
  baselines::AngrOptions tcall = base;
  tcall.tcall = true;
  baselines::AngrOptions scan = base;
  scan.scan = true;

  // All (entry × ladder-step) cells run concurrently on one pool.
  const std::vector<eval::StrategySpec> ladder = {
      {"FDE", bench::run_fde_only},
      {"FDE+Rec+Fmerg", angr_with(with_fmerge)},
      {"FDE+Rec", angr_with(base)},
      {"FDE+Rec+Fsig", angr_with(fsig)},
      {"FDE+Rec+Tcall", angr_with(tcall)},
      {"FDE+Rec+Scan", angr_with(scan)},
  };
  for (const eval::StrategyOutcome& out :
       eval::run_matrix(corpus, ladder, opts.jobs)) {
    bench::add_ladder_row(table, out.name, out.total);
  }

  table.print(std::cout);
  std::cout << "\nExpected shape: Fmerg reduces coverage; Fsig/Tcall/Scan "
               "add no meaningful coverage but pile up false positives "
               "(Scan worst).\n";
  return 0;
}
