/// \file bench_sec5a_fde_errors.cpp
/// Regenerates the §V-A quantification: the false function starts that
/// call frames themselves introduce (one FDE per part of a non-contiguous
/// function), how they spread over the corpus, that symbols share the same
/// problem, and the security impact — ROP gadgets admitted by a CFI
/// policy that trusts the false starts (paper: 34,772 FPs across 488 of
/// 1,352 binaries; 99,932 gadgets).

#include <iostream>

#include "bench/common.hpp"
#include "disasm/code_view.hpp"
#include "eval/gadget.hpp"

int main(int argc, char** argv) {
  using namespace fetch;
  const bench::BenchOptions opts = bench::parse_args(argc, argv);
  bench::print_header("§V-A — errors introduced by FDEs",
                      "FDE false starts from non-contiguous functions + "
                      "ROP gadget exposure");

  const eval::Corpus corpus = bench::self_built_corpus(opts);

  std::size_t fde_fps = 0;
  std::size_t noncontig_fps = 0;
  std::size_t affected_bins = 0;
  std::size_t max_in_one = 0;
  std::string max_name;
  std::size_t gadgets = 0;

  // Per-entry stats run concurrently; the worst-binary scan below stays
  // serial and in entry order, so ties resolve exactly as before.
  struct EntryErrors {
    std::size_t fps = 0;
    std::size_t noncontig = 0;
    std::size_t gadgets = 0;
  };
  const auto partials = util::parallel_map<EntryErrors>(
      opts.effective_jobs(), corpus.size(), [&](std::size_t i) {
        const eval::CorpusEntry& entry = corpus.entries()[i];
        const auto fde_starts = bench::run_fde_only(entry);
        const auto e = eval::evaluate_starts(fde_starts, entry.bin.truth);
        EntryErrors p;
        p.fps = e.fp();
        for (const std::uint64_t fp : e.false_positives) {
          p.noncontig += entry.bin.truth.cold_parts.count(fp) != 0 ? 1 : 0;
        }
        // ROP gadgets reachable from the blocks at the false starts.
        p.gadgets = eval::count_gadgets_at(entry.detector().code(),
                                           e.false_positives);
        return p;
      });
  for (std::size_t i = 0; i < partials.size(); ++i) {
    const EntryErrors& p = partials[i];
    fde_fps += p.fps;
    noncontig_fps += p.noncontig;
    gadgets += p.gadgets;
    if (p.fps > 0) {
      ++affected_bins;
      if (p.fps > max_in_one) {
        max_in_one = p.fps;
        max_name = corpus.entries()[i].bin.name;
      }
    }
  }

  std::cout << "FDE-introduced false starts: " << fde_fps
            << "  [paper: 34,772]\n";
  std::cout << "  of which non-contiguous parts: " << noncontig_fps
            << "  [paper: 34,769 of 34,772]\n";
  std::cout << "Binaries affected: " << affected_bins << " of "
            << corpus.size() << "  [paper: 488 of 1,352]\n";
  std::cout << "Worst binary: " << max_name << " with " << max_in_one
            << " false starts  [paper: mysqld-gcc-Ofast, 3,616]\n";
  std::cout << "ROP gadgets at false starts (CFI exposure): " << gadgets
            << "  [paper: 99,932]\n";

  // Symbols share the problem: cold parts carry their own symbols. This
  // needs unstripped re-generation, so it expands the spec at the bench's
  // scale rather than reusing the (stripped) corpus above.
  std::vector<synth::ProgramSpec> specs =
      synth::CorpusSpec::self_built(opts.scale).expand();
  const auto sym_fp_counts = util::parallel_map<std::size_t>(
      opts.effective_jobs(), specs.size(), [&](std::size_t i) {
        synth::ProgramSpec spec = specs[i];
        spec.stripped = false;  // need the symbol table
        const synth::SynthBinary bin = synth::generate(spec);
        const elf::ElfFile elf(bin.image);
        std::size_t fps = 0;
        for (const elf::Symbol& sym : elf.symbols()) {
          if (sym.is_function() &&
              bin.truth.cold_parts.count(sym.value) != 0) {
            ++fps;
          }
        }
        return fps;
      });
  std::size_t sym_fps = 0;
  for (const std::size_t n : sym_fp_counts) {
    sym_fps += n;
  }
  std::cout << "Symbol-introduced false starts (same mechanism): "
            << sym_fps << "  [paper: symbols introduce the same 34,769]\n";
  return 0;
}
