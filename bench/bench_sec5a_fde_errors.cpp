/// \file bench_sec5a_fde_errors.cpp
/// Regenerates the §V-A quantification: the false function starts that
/// call frames themselves introduce (one FDE per part of a non-contiguous
/// function), how they spread over the corpus, that symbols share the same
/// problem, and the security impact — ROP gadgets admitted by a CFI
/// policy that trusts the false starts (paper: 34,772 FPs across 488 of
/// 1,352 binaries; 99,932 gadgets).

#include <iostream>

#include "bench/common.hpp"
#include "disasm/code_view.hpp"
#include "eval/gadget.hpp"

int main() {
  using namespace fetch;
  bench::print_header("§V-A — errors introduced by FDEs",
                      "FDE false starts from non-contiguous functions + "
                      "ROP gadget exposure");

  const eval::Corpus corpus = eval::Corpus::self_built();

  std::size_t fde_fps = 0;
  std::size_t noncontig_fps = 0;
  std::size_t affected_bins = 0;
  std::size_t max_in_one = 0;
  std::string max_name;
  std::size_t gadgets = 0;

  for (const eval::CorpusEntry& entry : corpus.entries()) {
    const auto fde_starts = bench::run_fde_only(entry);
    const auto e = eval::evaluate_starts(fde_starts, entry.bin.truth);
    fde_fps += e.fp();
    std::size_t noncontig_here = 0;
    for (const std::uint64_t fp : e.false_positives) {
      noncontig_here +=
          entry.bin.truth.cold_parts.count(fp) != 0 ? 1 : 0;
    }
    noncontig_fps += noncontig_here;
    if (e.fp() > 0) {
      ++affected_bins;
      if (e.fp() > max_in_one) {
        max_in_one = e.fp();
        max_name = entry.bin.name;
      }
    }
    // ROP gadgets reachable from the blocks at the false starts.
    const disasm::CodeView code(entry.elf);
    gadgets += eval::count_gadgets_at(code, e.false_positives);
  }

  std::cout << "FDE-introduced false starts: " << fde_fps
            << "  [paper: 34,772]\n";
  std::cout << "  of which non-contiguous parts: " << noncontig_fps
            << "  [paper: 34,769 of 34,772]\n";
  std::cout << "Binaries affected: " << affected_bins << " of "
            << corpus.size() << "  [paper: 488 of 1,352]\n";
  std::cout << "Worst binary: " << max_name << " with " << max_in_one
            << " false starts  [paper: mysqld-gcc-Ofast, 3,616]\n";
  std::cout << "ROP gadgets at false starts (CFI exposure): " << gadgets
            << "  [paper: 99,932]\n";

  // Symbols share the problem: cold parts carry their own symbols.
  std::size_t sym_fps = 0;
  for (synth::ProgramSpec spec : synth::make_corpus()) {
    spec.stripped = false;  // need the symbol table
    const synth::SynthBinary bin = synth::generate(spec);
    const elf::ElfFile elf(bin.image);
    for (const elf::Symbol& sym : elf.symbols()) {
      if (sym.is_function() && bin.truth.cold_parts.count(sym.value) != 0) {
        ++sym_fps;
      }
    }
  }
  std::cout << "Symbol-introduced false starts (same mechanism): "
            << sym_fps << "  [paper: symbols introduce the same 34,769]\n";
  return 0;
}
