#pragma once

/// \file common.hpp
/// Shared scaffolding for the per-table/figure benchmark binaries: corpus
/// loading, the FETCH strategy-ladder configurations, aggregate printing,
/// and the command-line knobs every bench understands:
///
///   --jobs N         worker threads for corpus generation and the
///                    (entry × strategy) cells (default: FETCH_JOBS env,
///                    else hardware concurrency)
///   --scale S        corpus population: smoke (8 entries), default (176),
///                    full (the paper-scale 1,632 ≥ 1,352 set)
///   --smoke          alias for --scale smoke (ctest smoke runs)
///   --cache-dir D    content-addressed corpus cache root (default: the
///                    FETCH_CACHE_DIR env var; unset/empty = no cache).
///                    Repeated runs with the same spec load instead of
///                    regenerate. Unusable paths are rejected up front.
///
/// Every bench is standalone: it materializes the corpus (cache or
/// generation), runs its strategies, and prints the rows of the paper
/// artifact it regenerates. Corpus provenance goes to stderr so stdout
/// stays byte-comparable across job counts and cache states.

#include <cstdlib>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <string_view>

#include "core/detector.hpp"
#include "eval/metrics.hpp"
#include "eval/runner.hpp"
#include "eval/table.hpp"
#include "util/fs.hpp"
#include "util/thread_pool.hpp"

namespace fetch::bench {

struct BenchOptions {
  std::size_t jobs = 0;  ///< 0 → util::default_jobs()
  synth::Scale scale = synth::Scale::kDefault;
  std::string cache_dir;  ///< validated; empty = caching disabled

  [[nodiscard]] std::size_t effective_jobs() const {
    return jobs == 0 ? util::default_jobs() : jobs;
  }

  [[nodiscard]] eval::CorpusOptions corpus_options() const {
    return {scale, jobs, cache_dir};
  }
};

inline BenchOptions parse_args(int argc, char** argv) {
  BenchOptions options;
  options.cache_dir = util::default_cache_dir();
  auto usage = [&]() {
    std::cerr << "usage: " << argv[0]
              << " [--smoke] [--scale smoke|default|full] [--jobs N]"
                 " [--cache-dir DIR]\n";
    std::exit(2);
  };
  auto set_scale = [&](std::string_view text) {
    const auto scale = synth::parse_scale(text);
    if (!scale) {
      usage();
    }
    options.scale = *scale;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      options.scale = synth::Scale::kSmoke;
    } else if (arg == "--scale" && i + 1 < argc) {
      set_scale(argv[++i]);
    } else if (arg.rfind("--scale=", 0) == 0) {
      set_scale(arg.substr(8));
    } else if (arg == "--jobs" && i + 1 < argc) {
      if (!util::parse_jobs(argv[++i], &options.jobs)) {
        usage();
      }
    } else if (arg.rfind("--jobs=", 0) == 0) {
      if (!util::parse_jobs(arg.substr(7), &options.jobs)) {
        usage();
      }
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      options.cache_dir = argv[++i];
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      options.cache_dir = arg.substr(12);
    } else {
      usage();
    }
  }
  // Validate the cache directory (flag or FETCH_CACHE_DIR) up front, the
  // same way --jobs is validated: fail loudly before any work happens.
  if (!options.cache_dir.empty()) {
    std::string error;
    if (!util::prepare_cache_dir(&options.cache_dir, &error)) {
      std::cerr << argv[0] << ": --cache-dir/FETCH_CACHE_DIR: " << error
                << "\n";
      std::exit(2);
    }
  }
  return options;
}

inline void note_provenance(const eval::Corpus& corpus) {
  std::cerr << "corpus: " << corpus.size() << " entries ("
            << (corpus.from_cache() ? "loaded from cache" : "generated")
            << ")\n";
}

inline eval::Corpus self_built_corpus(const BenchOptions& options) {
  eval::Corpus corpus = eval::Corpus::self_built(options.corpus_options());
  note_provenance(corpus);
  return corpus;
}

inline eval::Corpus wild_corpus(const BenchOptions& options) {
  eval::Corpus corpus = eval::Corpus::wild(options.corpus_options());
  note_provenance(corpus);
  return corpus;
}

/// FDE-only detection (§IV-B): raw PC Begin values.
inline std::set<std::uint64_t> run_fde_only(const eval::CorpusEntry& entry) {
  core::DetectorOptions options;
  options.recursive = false;
  options.pointer_detection = false;
  options.fix_fde_errors = false;
  options.use_entry_point = false;
  return entry.detector().run(options).starts();
}

/// FDE + safe recursive disassembly (§IV-C).
inline std::set<std::uint64_t> run_fde_rec(const eval::CorpusEntry& entry) {
  core::DetectorOptions options = eval::fetch_options(entry.bin.truth);
  options.pointer_detection = false;
  options.fix_fde_errors = false;
  return entry.detector().run(options).starts();
}

/// FDE + recursion + function-pointer detection (§IV-E, "Xref").
inline std::set<std::uint64_t> run_fde_rec_xref(
    const eval::CorpusEntry& entry) {
  core::DetectorOptions options = eval::fetch_options(entry.bin.truth);
  options.fix_fde_errors = false;
  return entry.detector().run(options).starts();
}

/// The full FETCH pipeline (§VI).
inline std::set<std::uint64_t> run_fetch(const eval::CorpusEntry& entry) {
  return entry.detector().run(eval::fetch_options(entry.bin.truth)).starts();
}

/// Prints one "Figure 5" style ladder row.
inline void add_ladder_row(eval::TextTable& table, const std::string& name,
                           const eval::Aggregate& agg) {
  table.add_row({name, std::to_string(agg.full_coverage),
                 std::to_string(agg.full_accuracy),
                 std::to_string(agg.fp_total), std::to_string(agg.fn_total)});
}

inline void print_header(const std::string& title, const std::string& paper) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "reproduces: " << paper << "\n\n";
}

}  // namespace fetch::bench
