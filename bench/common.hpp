#pragma once

/// \file common.hpp
/// Shared scaffolding for the per-table/figure benchmark binaries: corpus
/// loading, the FETCH strategy-ladder configurations, aggregate printing,
/// and the command-line knobs every bench understands:
///
///   --jobs N    worker threads for the (entry × strategy) cells
///               (default: FETCH_JOBS env, else hardware concurrency)
///   --smoke     reduced corpus — compile/run verification for ctest
///
/// Every bench is standalone: it generates the corpus, runs its
/// strategies, and prints the rows of the paper artifact it regenerates.

#include <cstdlib>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <string_view>

#include "core/detector.hpp"
#include "eval/metrics.hpp"
#include "eval/runner.hpp"
#include "eval/table.hpp"
#include "util/thread_pool.hpp"

namespace fetch::bench {

struct BenchOptions {
  std::size_t jobs = 0;  ///< 0 → util::default_jobs()
  bool smoke = false;

  [[nodiscard]] std::size_t effective_jobs() const {
    return jobs == 0 ? util::default_jobs() : jobs;
  }
};

/// Entries kept by --smoke runs: enough to exercise every opt level of
/// the first project without paying for the full corpus.
inline constexpr std::size_t kSmokeEntries = 8;

inline BenchOptions parse_args(int argc, char** argv) {
  BenchOptions options;
  auto usage = [&]() {
    std::cerr << "usage: " << argv[0] << " [--smoke] [--jobs N]\n";
    std::exit(2);
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      options.smoke = true;
    } else if (arg == "--jobs" && i + 1 < argc) {
      if (!util::parse_jobs(argv[++i], &options.jobs)) {
        usage();
      }
    } else if (arg.rfind("--jobs=", 0) == 0) {
      if (!util::parse_jobs(arg.substr(7), &options.jobs)) {
        usage();
      }
    } else {
      usage();
    }
  }
  return options;
}

inline eval::Corpus self_built_corpus(const BenchOptions& options) {
  return eval::Corpus::self_built(options.smoke ? kSmokeEntries : 0,
                                  options.jobs);
}

inline eval::Corpus wild_corpus(const BenchOptions& options) {
  return eval::Corpus::wild(options.smoke ? kSmokeEntries : 0, options.jobs);
}

/// FDE-only detection (§IV-B): raw PC Begin values.
inline std::set<std::uint64_t> run_fde_only(const eval::CorpusEntry& entry) {
  core::DetectorOptions options;
  options.recursive = false;
  options.pointer_detection = false;
  options.fix_fde_errors = false;
  options.use_entry_point = false;
  return entry.detector().run(options).starts();
}

/// FDE + safe recursive disassembly (§IV-C).
inline std::set<std::uint64_t> run_fde_rec(const eval::CorpusEntry& entry) {
  core::DetectorOptions options = eval::fetch_options(entry.bin.truth);
  options.pointer_detection = false;
  options.fix_fde_errors = false;
  return entry.detector().run(options).starts();
}

/// FDE + recursion + function-pointer detection (§IV-E, "Xref").
inline std::set<std::uint64_t> run_fde_rec_xref(
    const eval::CorpusEntry& entry) {
  core::DetectorOptions options = eval::fetch_options(entry.bin.truth);
  options.fix_fde_errors = false;
  return entry.detector().run(options).starts();
}

/// The full FETCH pipeline (§VI).
inline std::set<std::uint64_t> run_fetch(const eval::CorpusEntry& entry) {
  return entry.detector().run(eval::fetch_options(entry.bin.truth)).starts();
}

/// Prints one "Figure 5" style ladder row.
inline void add_ladder_row(eval::TextTable& table, const std::string& name,
                           const eval::Aggregate& agg) {
  table.add_row({name, std::to_string(agg.full_coverage),
                 std::to_string(agg.full_accuracy),
                 std::to_string(agg.fp_total), std::to_string(agg.fn_total)});
}

inline void print_header(const std::string& title, const std::string& paper) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "reproduces: " << paper << "\n\n";
}

}  // namespace fetch::bench
