#pragma once

/// \file common.hpp
/// Shared scaffolding for the per-table/figure benchmark binaries: corpus
/// loading, the FETCH strategy-ladder configurations, and aggregate
/// printing. Every bench is standalone: it generates the corpus, runs its
/// strategies, and prints the rows of the paper artifact it regenerates.

#include <iostream>
#include <map>
#include <set>
#include <string>

#include "core/detector.hpp"
#include "eval/metrics.hpp"
#include "eval/runner.hpp"
#include "eval/table.hpp"

namespace fetch::bench {

/// FDE-only detection (§IV-B): raw PC Begin values.
inline std::set<std::uint64_t> run_fde_only(const eval::CorpusEntry& entry) {
  core::FunctionDetector detector(entry.elf);
  core::DetectorOptions options;
  options.recursive = false;
  options.pointer_detection = false;
  options.fix_fde_errors = false;
  options.use_entry_point = false;
  return detector.run(options).starts();
}

/// FDE + safe recursive disassembly (§IV-C).
inline std::set<std::uint64_t> run_fde_rec(const eval::CorpusEntry& entry) {
  core::FunctionDetector detector(entry.elf);
  core::DetectorOptions options = eval::fetch_options(entry.bin.truth);
  options.pointer_detection = false;
  options.fix_fde_errors = false;
  return detector.run(options).starts();
}

/// FDE + recursion + function-pointer detection (§IV-E, "Xref").
inline std::set<std::uint64_t> run_fde_rec_xref(
    const eval::CorpusEntry& entry) {
  core::FunctionDetector detector(entry.elf);
  core::DetectorOptions options = eval::fetch_options(entry.bin.truth);
  options.fix_fde_errors = false;
  return detector.run(options).starts();
}

/// The full FETCH pipeline (§VI).
inline std::set<std::uint64_t> run_fetch(const eval::CorpusEntry& entry) {
  core::FunctionDetector detector(entry.elf);
  return detector.run(eval::fetch_options(entry.bin.truth)).starts();
}

/// Prints one "Figure 5" style ladder row.
inline void add_ladder_row(eval::TextTable& table, const std::string& name,
                           const eval::Aggregate& agg) {
  table.add_row({name, std::to_string(agg.full_coverage),
                 std::to_string(agg.full_accuracy),
                 std::to_string(agg.fp_total), std::to_string(agg.fn_total)});
}

inline void print_header(const std::string& title, const std::string& paper) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "reproduces: " << paper << "\n\n";
}

}  // namespace fetch::bench
