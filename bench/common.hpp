#pragma once

/// \file common.hpp
/// Shared scaffolding for the per-table/figure benchmark binaries: corpus
/// loading, the FETCH strategy-ladder configurations, aggregate printing,
/// and the command-line knobs every bench understands:
///
///   --jobs N         worker threads for corpus generation and the
///                    (entry × strategy) cells (default: FETCH_JOBS env,
///                    else hardware concurrency)
///   --scale S        corpus population: smoke (8 entries), default (176),
///                    full (the paper-scale 1,632 ≥ 1,352 set)
///   --smoke          alias for --scale smoke (ctest smoke runs)
///   --cache-dir D    content-addressed corpus cache root (default: the
///                    FETCH_CACHE_DIR env var; unset/empty = no cache).
///                    Repeated runs with the same spec load instead of
///                    regenerate. Unusable paths are rejected up front.
///   --json PATH      additionally emit the bench's results as a
///                    machine-readable JSON document (schema
///                    "fetch-bench-v1"); numbers in the file are the exact
///                    formatted strings printed in the human table.
///                    Currently wired into bench_micro and
///                    bench_table5_runtime.
///   --predecode      eagerly pre-decode every corpus entry's executable
///                    sections (sharded linear sweep on the thread pool)
///                    before any strategy runs, so cells execute on a warm
///                    decode cache.
///
/// Every bench is standalone: it materializes the corpus (cache or
/// generation), runs its strategies, and prints the rows of the paper
/// artifact it regenerates. Corpus provenance goes to stderr so stdout
/// stays byte-comparable across job counts and cache states.

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "core/detector.hpp"
#include "eval/metrics.hpp"
#include "eval/runner.hpp"
#include "eval/table.hpp"
#include "util/fs.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"

namespace fetch::bench {

struct BenchOptions {
  std::size_t jobs = 0;  ///< 0 → util::default_jobs()
  synth::Scale scale = synth::Scale::kDefault;
  std::string cache_dir;  ///< validated; empty = caching disabled
  std::string json_path;  ///< empty = no JSON output
  bool predecode = false;

  [[nodiscard]] std::size_t effective_jobs() const {
    return jobs == 0 ? util::default_jobs() : jobs;
  }

  [[nodiscard]] eval::CorpusOptions corpus_options() const {
    return {scale, jobs, cache_dir};
  }
};

/// Parses the harness-wide flags. When \p passthrough is non-null,
/// unrecognized arguments are collected there instead of being a usage
/// error — bench_micro uses this to forward google-benchmark flags; every
/// other bench rejects unknowns.
inline BenchOptions parse_args(int argc, char** argv,
                               std::vector<char*>* passthrough = nullptr) {
  BenchOptions options;
  options.cache_dir = util::default_cache_dir();
  auto usage = [&]() {
    std::cerr << "usage: " << argv[0]
              << " [--smoke] [--scale smoke|default|full] [--jobs N]"
                 " [--cache-dir DIR] [--json PATH] [--predecode]\n";
    std::exit(2);
  };
  auto set_scale = [&](std::string_view text) {
    const auto scale = synth::parse_scale(text);
    if (!scale) {
      usage();
    }
    options.scale = *scale;
  };
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--smoke") {
      options.scale = synth::Scale::kSmoke;
    } else if (arg == "--scale" && i + 1 < argc) {
      set_scale(argv[++i]);
    } else if (arg.rfind("--scale=", 0) == 0) {
      set_scale(arg.substr(8));
    } else if (arg == "--jobs" && i + 1 < argc) {
      if (!util::parse_jobs(argv[++i], &options.jobs)) {
        usage();
      }
    } else if (arg.rfind("--jobs=", 0) == 0) {
      if (!util::parse_jobs(arg.substr(7), &options.jobs)) {
        usage();
      }
    } else if (arg == "--cache-dir" && i + 1 < argc) {
      options.cache_dir = argv[++i];
    } else if (arg.rfind("--cache-dir=", 0) == 0) {
      options.cache_dir = arg.substr(12);
    } else if (arg == "--json" && i + 1 < argc) {
      options.json_path = argv[++i];
    } else if (arg.rfind("--json=", 0) == 0) {
      options.json_path = arg.substr(7);
    } else if (arg == "--predecode") {
      options.predecode = true;
    } else if (passthrough != nullptr) {
      passthrough->push_back(argv[i]);
    } else {
      usage();
    }
  }
  // Validate the cache directory (flag or FETCH_CACHE_DIR) up front, the
  // same way --jobs is validated: fail loudly before any work happens.
  if (!options.cache_dir.empty()) {
    std::string error;
    if (!util::prepare_cache_dir(&options.cache_dir, &error)) {
      std::cerr << argv[0] << ": --cache-dir/FETCH_CACHE_DIR: " << error
                << "\n";
      std::exit(2);
    }
  }
  return options;
}

inline void note_provenance(const eval::Corpus& corpus) {
  std::cerr << "corpus: " << corpus.size() << " entries ("
            << (corpus.from_cache() ? "loaded from cache" : "generated")
            << ")\n";
}

/// Root document of a "fetch-bench-v1" JSON report. Benches append rows
/// under "results" and derived scalars under "derived", then call
/// write_json_report.
[[nodiscard]] inline util::json::Value json_report(const std::string& bench,
                                                   const BenchOptions& opts) {
  util::json::Value doc = util::json::Value::object();
  doc.set("schema", util::json::Value("fetch-bench-v1"));
  doc.set("bench", util::json::Value(bench));
  doc.set("scale", util::json::Value(synth::scale_name(opts.scale)));
  doc.set("jobs", util::json::Value::number(
                      static_cast<std::uint64_t>(opts.effective_jobs())));
  doc.set("results", util::json::Value::array());
  return doc;
}

/// Writes the report to \p opts.json_path (no-op when --json was not
/// given). Fails loudly: an unwritable path aborts the bench.
inline void write_json_report(const BenchOptions& opts,
                              const util::json::Value& doc) {
  if (opts.json_path.empty()) {
    return;
  }
  std::ofstream out(opts.json_path, std::ios::trunc);
  out << doc.dump() << "\n";
  out.close();  // flush now so buffered write errors are observable
  if (out.fail()) {
    std::cerr << "error: cannot write --json file: " << opts.json_path
              << "\n";
    std::exit(2);
  }
  std::cerr << "json report: " << opts.json_path << "\n";
}

/// Honors --predecode: eagerly decodes every entry's executable sections
/// (sharded linear sweep) so the strategy cells below run entirely on a
/// warm decode cache. Provenance goes to stderr like the corpus note.
inline void maybe_predecode(const eval::Corpus& corpus,
                            const BenchOptions& opts) {
  if (!opts.predecode) {
    return;
  }
  std::uint64_t records = 0;
  for (const eval::CorpusEntry& entry : corpus.entries()) {
    const disasm::CodeView& code = entry.detector().code();
    code.predecode(opts.effective_jobs());
    records += code.decoded_records();
  }
  std::cerr << "predecode: " << records << " instructions across "
            << corpus.size() << " entries\n";
}

inline eval::Corpus self_built_corpus(const BenchOptions& options) {
  eval::Corpus corpus = eval::Corpus::self_built(options.corpus_options());
  note_provenance(corpus);
  maybe_predecode(corpus, options);
  return corpus;
}

inline eval::Corpus wild_corpus(const BenchOptions& options) {
  eval::Corpus corpus = eval::Corpus::wild(options.corpus_options());
  note_provenance(corpus);
  maybe_predecode(corpus, options);
  return corpus;
}

/// FDE-only detection (§IV-B): raw PC Begin values.
inline std::set<std::uint64_t> run_fde_only(const eval::CorpusEntry& entry) {
  core::DetectorOptions options;
  options.recursive = false;
  options.pointer_detection = false;
  options.fix_fde_errors = false;
  options.use_entry_point = false;
  return entry.detector().run(options).starts();
}

/// FDE + safe recursive disassembly (§IV-C).
inline std::set<std::uint64_t> run_fde_rec(const eval::CorpusEntry& entry) {
  core::DetectorOptions options = eval::fetch_options(entry.bin.truth);
  options.pointer_detection = false;
  options.fix_fde_errors = false;
  return entry.detector().run(options).starts();
}

/// FDE + recursion + function-pointer detection (§IV-E, "Xref").
inline std::set<std::uint64_t> run_fde_rec_xref(
    const eval::CorpusEntry& entry) {
  core::DetectorOptions options = eval::fetch_options(entry.bin.truth);
  options.fix_fde_errors = false;
  return entry.detector().run(options).starts();
}

/// The full FETCH pipeline (§VI).
inline std::set<std::uint64_t> run_fetch(const eval::CorpusEntry& entry) {
  return entry.detector().run(eval::fetch_options(entry.bin.truth)).starts();
}

/// Prints one "Figure 5" style ladder row.
inline void add_ladder_row(eval::TextTable& table, const std::string& name,
                           const eval::Aggregate& agg) {
  table.add_row({name, std::to_string(agg.full_coverage),
                 std::to_string(agg.full_accuracy),
                 std::to_string(agg.fp_total), std::to_string(agg.fn_total)});
}

inline void print_header(const std::string& title, const std::string& paper) {
  std::cout << "=== " << title << " ===\n";
  std::cout << "reproduces: " << paper << "\n\n";
}

}  // namespace fetch::bench
